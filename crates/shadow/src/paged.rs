//! A TSan-style two-level direct-mapped shadow table.
//!
//! Where [`ShadowTable`](crate::ShadowTable) hashes every access to find
//! its 128-byte chunk, the paged store splits the address once more: a
//! *directory* covers a 4 KiB span (32 chunks) and is found through a
//! small hash map keyed by `addr >> 12`, backed by a one-entry hot cache
//! that short-circuits the probe entirely while accesses stay within the
//! same 4 KiB page. Within a directory, chunk and slot are direct array
//! indices — no hashing, no chaining.
//!
//! This is the same locality bet ThreadSanitizer's shadow layout makes:
//! real access streams are page-local, so the common-case lookup is two
//! array indexes off a cached pointer. The sharded engine gives each shard
//! its own detector (and therefore its own store), so the hot cache is
//! per-shard state: each shard's streak locality is captured
//! independently, without any cross-thread invalidation.
//!
//! Chunks keep the paper's Fig. 4 behaviour exactly: they start in **word
//! mode** (32 slots, one per 4-aligned address; unaligned lookups miss)
//! and expand to **byte mode** (128 slots) on the first unaligned insert,
//! preserving existing cells at `slot * 4`. Because mode state is
//! per-chunk at the same 128-byte granularity as the hash table, every
//! observable behaviour — hits, misses, neighbor scans, range removal —
//! is identical between the two stores.

use std::cell::Cell;

use dgrace_trace::Addr;

use crate::accounting::{hash_entry_bytes, paged_dir_bytes};
use crate::hash::FastMap;

/// Bytes covered by one chunk (equals the hash table's default `m`).
const CHUNK_BYTES: u64 = 128;
const CHUNK_SHIFT: u32 = CHUNK_BYTES.trailing_zeros();
/// Chunks per directory; a directory spans 4 KiB.
const DIR_CHUNKS: u64 = 32;
const DIR_SHIFT: u32 = CHUNK_SHIFT + DIR_CHUNKS.trailing_zeros();

/// Word-mode slot count per chunk.
const WORD_SLOTS: usize = (CHUNK_BYTES / 4) as usize;
/// Byte-mode slot count per chunk.
const BYTE_SLOTS: usize = CHUNK_BYTES as usize;

#[derive(Debug)]
struct Chunk<T> {
    /// `m/4` slots in word mode, `m` slots in byte mode.
    slots: Vec<Option<T>>,
    byte_mode: bool,
    /// Populated slots (O(1) emptiness checks on removal).
    live: u32,
}

impl<T> Chunk<T> {
    fn new_word_mode() -> Box<Self> {
        Box::new(Chunk {
            slots: (0..WORD_SLOTS).map(|_| None).collect(),
            byte_mode: false,
            live: 0,
        })
    }

    #[inline]
    fn stride(&self) -> u64 {
        if self.byte_mode {
            1
        } else {
            4
        }
    }

    /// Slot index of the in-chunk offset `low`, or `None` if the address
    /// is unaligned and the chunk is still in word mode.
    #[inline]
    fn slot_of(&self, low: usize) -> Option<usize> {
        if self.byte_mode {
            Some(low)
        } else if low.is_multiple_of(4) {
            Some(low / 4)
        } else {
            None
        }
    }
}

#[derive(Debug)]
struct Directory<T> {
    key: u64,
    /// Populated cells across all chunks (O(1) emptiness checks).
    live: u32,
    chunks: [Option<Box<Chunk<T>>>; DIR_CHUNKS as usize],
}

/// A two-level direct-mapped shadow store: directory map → chunk array →
/// slot array, with a one-entry hot-directory cache in front.
///
/// Like [`ShadowTable`](crate::ShadowTable), the store tracks its own
/// modeled byte footprint (directory nodes + slot arrays) for the `Hash`
/// column of Table 2.
#[derive(Debug)]
pub struct PagedShadow<T> {
    /// Directory key (`addr >> 12`) → index into `dirs`.
    map: FastMap<u64, u32>,
    /// Directory arena; freed slots are recycled through `free`.
    dirs: Vec<Option<Directory<T>>>,
    free: Vec<u32>,
    /// Last directory hit: `(key, index into dirs)`. Interior-mutable so
    /// read-only lookups refresh it too; invalidated when the cached
    /// directory is freed. One per store, i.e. one per shard.
    hot: Cell<Option<(u64, u32)>>,
    live: usize,
    bytes: usize,
}

impl<T> Default for PagedShadow<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PagedShadow<T> {
    /// Creates an empty paged store.
    pub fn new() -> Self {
        PagedShadow {
            map: FastMap::default(),
            dirs: Vec::new(),
            free: Vec::new(),
            hot: Cell::new(None),
            live: 0,
            bytes: 0,
        }
    }

    #[inline]
    fn dir_key(addr: Addr) -> u64 {
        addr.0 >> DIR_SHIFT
    }

    #[inline]
    fn chunk_index(addr: Addr) -> usize {
        ((addr.0 >> CHUNK_SHIFT) & (DIR_CHUNKS - 1)) as usize
    }

    #[inline]
    fn low(addr: Addr) -> usize {
        (addr.0 & (CHUNK_BYTES - 1)) as usize
    }

    /// Arena index of the directory for `key`, going through the hot
    /// cache. A hit costs one compare; a miss costs one hash probe and
    /// refreshes the cache.
    #[inline]
    fn dir_index(&self, key: u64) -> Option<u32> {
        if let Some((k, i)) = self.hot.get() {
            if k == key {
                return Some(i);
            }
        }
        let i = *self.map.get(&key)?;
        self.hot.set(Some((key, i)));
        Some(i)
    }

    #[inline]
    fn dir(&self, key: u64) -> Option<&Directory<T>> {
        let i = self.dir_index(key)?;
        self.dirs[i as usize].as_ref()
    }

    /// Looks up the cell for `addr`.
    pub fn get(&self, addr: Addr) -> Option<&T> {
        let dir = self.dir(Self::dir_key(addr))?;
        let chunk = dir.chunks[Self::chunk_index(addr)].as_ref()?;
        let slot = chunk.slot_of(Self::low(addr))?;
        chunk.slots[slot].as_ref()
    }

    /// Looks up the cell for `addr` mutably.
    pub fn get_mut(&mut self, addr: Addr) -> Option<&mut T> {
        let i = self.dir_index(Self::dir_key(addr))?;
        let dir = self.dirs[i as usize].as_mut()?;
        let chunk = dir.chunks[Self::chunk_index(addr)].as_mut()?;
        let slot = chunk.slot_of(Self::low(addr))?;
        chunk.slots[slot].as_mut()
    }

    /// Inserts a cell for `addr`, creating the directory and chunk (and
    /// expanding word→byte mode) as needed. Returns the previous cell.
    pub fn insert(&mut self, addr: Addr, value: T) -> Option<T> {
        let key = Self::dir_key(addr);
        let di = match self.dir_index(key) {
            Some(i) => i,
            None => {
                let dir = Directory {
                    key,
                    live: 0,
                    chunks: std::array::from_fn(|_| None),
                };
                let i = match self.free.pop() {
                    Some(i) => {
                        self.dirs[i as usize] = Some(dir);
                        i
                    }
                    None => {
                        self.dirs.push(Some(dir));
                        (self.dirs.len() - 1) as u32
                    }
                };
                self.map.insert(key, i);
                self.bytes += paged_dir_bytes(DIR_CHUNKS as usize);
                self.hot.set(Some((key, i)));
                i
            }
        };
        let dir = self.dirs[di as usize].as_mut().expect("mapped directory");
        let ci = Self::chunk_index(addr);
        if dir.chunks[ci].is_none() {
            dir.chunks[ci] = Some(Chunk::new_word_mode());
            self.bytes += hash_entry_bytes(WORD_SLOTS);
        }
        let chunk = dir.chunks[ci].as_mut().expect("just ensured");
        if !chunk.byte_mode && !addr.0.is_multiple_of(4) {
            // First byte access: expand to m slots, existing word cells
            // move to `slot * 4` (Fig. 4).
            let mut slots: Vec<Option<T>> = (0..BYTE_SLOTS).map(|_| None).collect();
            for (i, cell) in chunk.slots.drain(..).enumerate() {
                slots[i * 4] = cell;
            }
            chunk.slots = slots;
            chunk.byte_mode = true;
            self.bytes += hash_entry_bytes(BYTE_SLOTS) - hash_entry_bytes(WORD_SLOTS);
        }
        let low = Self::low(addr);
        let slot = if chunk.byte_mode { low } else { low / 4 };
        let prev = chunk.slots[slot].replace(value);
        if prev.is_none() {
            chunk.live += 1;
            dir.live += 1;
            self.live += 1;
        }
        prev
    }

    /// Removes the cell at `addr`, dropping the chunk — and the directory —
    /// when they become empty.
    pub fn remove(&mut self, addr: Addr) -> Option<T> {
        let key = Self::dir_key(addr);
        let di = self.dir_index(key)?;
        let dir = self.dirs[di as usize].as_mut()?;
        let ci = Self::chunk_index(addr);
        let chunk = dir.chunks[ci].as_mut()?;
        let slot = chunk.slot_of(Self::low(addr))?;
        let removed = chunk.slots[slot].take()?;
        chunk.live -= 1;
        dir.live -= 1;
        self.live -= 1;
        if chunk.live == 0 {
            self.bytes -= hash_entry_bytes(chunk.slots.len());
            dir.chunks[ci] = None;
        }
        if dir.live == 0 {
            self.free_dir(key, di);
        }
        Some(removed)
    }

    fn free_dir(&mut self, key: u64, di: u32) {
        self.dirs[di as usize] = None;
        self.map.remove(&key);
        self.free.push(di);
        self.bytes -= paged_dir_bytes(DIR_CHUNKS as usize);
        if let Some((k, _)) = self.hot.get() {
            if k == key {
                self.hot.set(None);
            }
        }
    }

    /// Removes every cell with address in `[base, base+len)`, invoking `f`
    /// on each removed `(addr, cell)`.
    pub fn remove_range(&mut self, base: Addr, len: u64, mut f: impl FnMut(Addr, T)) {
        if len == 0 {
            return;
        }
        let first_key = Self::dir_key(base);
        let last_key = Self::dir_key(Addr(base.0 + len - 1));
        for key in first_key..=last_key {
            let Some(di) = self.dir_index(key) else {
                continue;
            };
            let dir = self.dirs[di as usize].as_mut().expect("mapped directory");
            for ci in 0..DIR_CHUNKS as usize {
                let chunk_base = (key << DIR_SHIFT) + (ci as u64) * CHUNK_BYTES;
                if chunk_base + CHUNK_BYTES <= base.0 || chunk_base >= base.0 + len {
                    continue;
                }
                let Some(chunk) = dir.chunks[ci].as_mut() else {
                    continue;
                };
                let stride = chunk.stride();
                for slot in 0..chunk.slots.len() {
                    let addr = Addr(chunk_base + (slot as u64) * stride);
                    if addr.0 >= base.0 && addr.0 < base.0 + len {
                        if let Some(cell) = chunk.slots[slot].take() {
                            chunk.live -= 1;
                            dir.live -= 1;
                            self.live -= 1;
                            f(addr, cell);
                        }
                    }
                }
                if chunk.live == 0 {
                    self.bytes -= hash_entry_bytes(chunk.slots.len());
                    dir.chunks[ci] = None;
                }
            }
            if dir.live == 0 {
                self.free_dir(key, di);
            }
        }
    }

    /// The nearest populated location strictly below `addr`, scanning at
    /// most `max_dist` bytes back.
    pub fn nearest_predecessor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)> {
        self.scan(addr, max_dist, -1)
    }

    /// The nearest populated location strictly above `addr`, scanning at
    /// most `max_dist` bytes forward.
    pub fn nearest_successor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)> {
        self.scan(addr, max_dist, 1)
    }

    /// Directional scan, chunk by chunk outward from `addr`. Absent
    /// *directories* are skipped 4 KiB at a time (one probe per 32
    /// chunks — cheaper than the hash table's probe per chunk), and the
    /// per-chunk slot walk is identical to the hash table's, so both
    /// stores report the same neighbor for the same query.
    fn scan(&self, addr: Addr, max_dist: u64, dir_sign: i64) -> Option<(Addr, &T)> {
        if max_dist == 0 {
            return None;
        }
        let (lo, hi) = if dir_sign > 0 {
            (addr.0 + 1, addr.0.saturating_add(max_dist))
        } else {
            (addr.0.saturating_sub(max_dist), addr.0.saturating_sub(1))
        };
        if lo > hi || (dir_sign < 0 && addr.0 == 0) {
            return None;
        }
        // Global chunk numbers covering the scan window.
        let first_gc = (if dir_sign > 0 { lo } else { hi }) >> CHUNK_SHIFT;
        let last_gc = (if dir_sign > 0 { hi } else { lo }) >> CHUNK_SHIFT;
        let mut gc = first_gc;
        loop {
            let key = gc >> DIR_CHUNKS.trailing_zeros();
            match self.dir(key) {
                None => {
                    // Skip the remaining chunks of this absent directory —
                    // one probe covers its whole 4 KiB span.
                    let dir_first = key << DIR_CHUNKS.trailing_zeros();
                    let dir_last = dir_first + DIR_CHUNKS - 1;
                    if dir_sign > 0 {
                        if last_gc <= dir_last {
                            return None;
                        }
                        gc = dir_last + 1;
                    } else {
                        if last_gc >= dir_first {
                            return None;
                        }
                        gc = dir_first - 1;
                    }
                    continue;
                }
                Some(d) => {
                    let ci = (gc & (DIR_CHUNKS - 1)) as usize;
                    if let Some(chunk) = d.chunks[ci].as_ref() {
                        let stride = chunk.stride();
                        let chunk_base = gc << CHUNK_SHIFT;
                        let chunk_end = chunk_base + CHUNK_BYTES - 1;
                        let from = lo.max(chunk_base);
                        let to = hi.min(chunk_end);
                        if from <= to {
                            let s_lo = (from - chunk_base).div_ceil(stride);
                            let s_hi = (to - chunk_base) / stride;
                            if s_lo <= s_hi {
                                let found = if dir_sign > 0 {
                                    (s_lo..=s_hi).find(|&s| chunk.slots[s as usize].is_some())
                                } else {
                                    (s_lo..=s_hi)
                                        .rev()
                                        .find(|&s| chunk.slots[s as usize].is_some())
                                };
                                if let Some(s) = found {
                                    let a = Addr(chunk_base + s * stride);
                                    return chunk.slots[s as usize].as_ref().map(|c| (a, c));
                                }
                            }
                        }
                    }
                }
            }
            if gc == last_gc {
                return None;
            }
            gc = if dir_sign > 0 { gc + 1 } else { gc - 1 };
        }
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no cells are populated.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Modeled bytes of the paging structure (directory nodes + slot
    /// arrays) — the `Hash` column of Table 2 for this store.
    pub fn index_bytes(&self) -> usize {
        self.bytes
    }

    /// Picks a victim region for memory-budget eviction: the span of the
    /// lowest-keyed resident directory that is *not* the hot-cached one
    /// (the one most recently touched), falling back to the hot directory
    /// when it is the only resident. Deterministic for a given store
    /// state.
    pub fn victim_region(&self) -> Option<(Addr, u64)> {
        let hot_key = self.hot.get().map(|(k, _)| k);
        let key = match self.map.keys().filter(|&&k| Some(k) != hot_key).min() {
            Some(&k) => k,
            None => *self.map.keys().min()?,
        };
        Some((Addr(key << DIR_SHIFT), 1u64 << DIR_SHIFT))
    }

    /// Base addresses of chunks currently in byte mode, ascending.
    /// Snapshot restore replays these through
    /// [`PagedShadow::force_byte_mode`] so the rebuilt index matches the
    /// live one byte-for-byte.
    pub fn byte_mode_chunks(&self) -> Vec<Addr> {
        let mut out = Vec::new();
        for dir in self.dirs.iter().flatten() {
            for (ci, chunk) in dir.chunks.iter().enumerate() {
                if chunk.as_ref().is_some_and(|c| c.byte_mode) {
                    out.push(Addr((dir.key << DIR_SHIFT) + (ci as u64) * CHUNK_BYTES));
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Forces the chunk containing `addr` into byte mode, preserving
    /// existing cells exactly as an unaligned insert would. No-op when
    /// the chunk is absent or already expanded.
    pub fn force_byte_mode(&mut self, addr: Addr) {
        let Some(di) = self.dir_index(Self::dir_key(addr)) else {
            return;
        };
        let Some(dir) = self.dirs[di as usize].as_mut() else {
            return;
        };
        let Some(chunk) = dir.chunks[Self::chunk_index(addr)].as_mut() else {
            return;
        };
        if chunk.byte_mode {
            return;
        }
        let mut slots: Vec<Option<T>> = (0..BYTE_SLOTS).map(|_| None).collect();
        for (i, cell) in chunk.slots.drain(..).enumerate() {
            slots[i * 4] = cell;
        }
        chunk.slots = slots;
        chunk.byte_mode = true;
        self.bytes += hash_entry_bytes(BYTE_SLOTS) - hash_entry_bytes(WORD_SLOTS);
    }

    /// Applies `f` to every populated cell, in unspecified order.
    pub fn for_each(&self, mut f: impl FnMut(Addr, &T)) {
        for dir in self.dirs.iter().flatten() {
            for (ci, chunk) in dir.chunks.iter().enumerate() {
                let Some(chunk) = chunk.as_ref() else {
                    continue;
                };
                let stride = chunk.stride();
                let chunk_base = (dir.key << DIR_SHIFT) + (ci as u64) * CHUNK_BYTES;
                for (slot, cell) in chunk.slots.iter().enumerate() {
                    if let Some(c) = cell.as_ref() {
                        f(Addr(chunk_base + (slot as u64) * stride), c);
                    }
                }
            }
        }
    }

    /// Applies `f` to every populated cell mutably, in unspecified order.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(Addr, &mut T)) {
        for dir in self.dirs.iter_mut().flatten() {
            for (ci, chunk) in dir.chunks.iter_mut().enumerate() {
                let Some(chunk) = chunk.as_mut() else {
                    continue;
                };
                let stride = if chunk.byte_mode { 1u64 } else { 4 };
                let chunk_base = (dir.key << DIR_SHIFT) + (ci as u64) * CHUNK_BYTES;
                for (slot, cell) in chunk.slots.iter_mut().enumerate() {
                    if let Some(c) = cell.as_mut() {
                        f(Addr(chunk_base + (slot as u64) * stride), c);
                    }
                }
            }
        }
    }
}

impl<T: std::fmt::Debug> crate::store::ShadowStore<T> for PagedShadow<T> {
    const LABEL: &'static str = "paged";

    #[inline]
    fn get(&self, addr: Addr) -> Option<&T> {
        PagedShadow::get(self, addr)
    }

    #[inline]
    fn get_mut(&mut self, addr: Addr) -> Option<&mut T> {
        PagedShadow::get_mut(self, addr)
    }

    #[inline]
    fn insert(&mut self, addr: Addr, value: T) -> Option<T> {
        PagedShadow::insert(self, addr, value)
    }

    #[inline]
    fn remove(&mut self, addr: Addr) -> Option<T> {
        PagedShadow::remove(self, addr)
    }

    #[inline]
    fn remove_range(&mut self, base: Addr, len: u64, f: impl FnMut(Addr, T)) {
        PagedShadow::remove_range(self, base, len, f)
    }

    #[inline]
    fn nearest_predecessor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)> {
        PagedShadow::nearest_predecessor(self, addr, max_dist)
    }

    #[inline]
    fn nearest_successor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)> {
        PagedShadow::nearest_successor(self, addr, max_dist)
    }

    #[inline]
    fn len(&self) -> usize {
        PagedShadow::len(self)
    }

    #[inline]
    fn index_bytes(&self) -> usize {
        PagedShadow::index_bytes(self)
    }

    #[inline]
    fn victim_region(&self) -> Option<(Addr, u64)> {
        PagedShadow::victim_region(self)
    }

    fn for_each(&self, f: impl FnMut(Addr, &T)) {
        PagedShadow::for_each(self, f)
    }

    fn for_each_mut(&mut self, f: impl FnMut(Addr, &mut T)) {
        PagedShadow::for_each_mut(self, f)
    }

    #[inline]
    fn byte_mode_chunks(&self) -> Vec<Addr> {
        PagedShadow::byte_mode_chunks(self)
    }

    #[inline]
    fn force_byte_mode(&mut self, addr: Addr) {
        PagedShadow::force_byte_mode(self, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_word_aligned() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        assert!(t.insert(Addr(0x100), 7).is_none());
        assert_eq!(t.get(Addr(0x100)), Some(&7));
        assert_eq!(t.get(Addr(0x104)), None);
        assert_eq!(t.insert(Addr(0x100), 9), Some(7));
        assert_eq!(t.remove(Addr(0x100)), Some(9));
        assert!(t.is_empty());
        assert_eq!(t.index_bytes(), 0);
    }

    #[test]
    fn victim_region_avoids_hot_directory() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        assert_eq!(t.victim_region(), None);
        t.insert(Addr(0x1000), 1);
        t.insert(Addr(0x5000), 2);
        // The last touch cached directory 0x5000; the victim is the other.
        assert_eq!(t.victim_region(), Some((Addr(0x1000), 0x1000)));
        // With only the hot directory resident, it is the fallback victim.
        let (base, len) = t.victim_region().unwrap();
        t.remove_range(base, len, |_, _| {});
        assert_eq!(t.victim_region(), Some((Addr(0x5000), 0x1000)));
    }

    #[test]
    fn word_mode_starts_small_and_expands_on_byte_access() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        t.insert(Addr(0x100), 1);
        assert_eq!(
            t.index_bytes(),
            paged_dir_bytes(32) + hash_entry_bytes(WORD_SLOTS)
        );
        t.insert(Addr(0x103), 2);
        assert_eq!(
            t.index_bytes(),
            paged_dir_bytes(32) + hash_entry_bytes(BYTE_SLOTS)
        );
        assert_eq!(t.get(Addr(0x100)), Some(&1));
        assert_eq!(t.get(Addr(0x103)), Some(&2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unaligned_lookup_in_word_mode_is_none() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        t.insert(Addr(0x100), 1);
        assert_eq!(t.get(Addr(0x101)), None);
        assert_eq!(t.remove(Addr(0x101)), None);
    }

    #[test]
    fn expansion_is_per_chunk() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        t.insert(Addr(0x0), 1);
        t.insert(Addr(0x80), 2); // next chunk, same directory
        t.insert(Addr(0x81), 3); // expands only the second chunk
        assert_eq!(
            t.index_bytes(),
            paged_dir_bytes(32) + hash_entry_bytes(WORD_SLOTS) + hash_entry_bytes(BYTE_SLOTS)
        );
        assert_eq!(t.get(Addr(0x0)), Some(&1));
        assert_eq!(t.get(Addr(0x80)), Some(&2));
        assert_eq!(t.get(Addr(0x81)), Some(&3));
        // The word-mode chunk still misses unaligned addresses.
        assert_eq!(t.get(Addr(0x1)), None);
    }

    #[test]
    fn nearest_neighbors_within_and_across_chunks() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        t.insert(Addr(0x100), 10);
        t.insert(Addr(0x108), 11);
        assert_eq!(
            t.nearest_predecessor(Addr(0x108), 16),
            Some((Addr(0x100), &10))
        );
        assert_eq!(
            t.nearest_successor(Addr(0x100), 16),
            Some((Addr(0x108), &11))
        );
        assert_eq!(t.nearest_predecessor(Addr(0x108), 4), None);
        t.insert(Addr(0x180), 12);
        assert_eq!(
            t.nearest_successor(Addr(0x108), 256),
            Some((Addr(0x180), &12))
        );
        assert_eq!(
            t.nearest_predecessor(Addr(0x180), 256),
            Some((Addr(0x108), &11))
        );
    }

    #[test]
    fn predecessor_stops_at_zero() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        t.insert(Addr(0x0), 1);
        assert_eq!(t.nearest_predecessor(Addr(0x0), 64), None);
        assert_eq!(t.nearest_predecessor(Addr(0x4), 64), Some((Addr(0x0), &1)));
    }

    #[test]
    fn scan_crosses_directory_boundaries() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        t.insert(Addr(0x10000), 1);
        t.insert(Addr(0x0), 2);
        assert_eq!(
            t.nearest_predecessor(Addr(0x10000), 0x10000),
            Some((Addr(0x0), &2))
        );
        assert_eq!(
            t.nearest_successor(Addr(0x0), 0x10000),
            Some((Addr(0x10000), &1))
        );
    }

    #[test]
    fn remove_range_frees_blocks() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        for i in 0..8u64 {
            t.insert(Addr(0x100 + i * 4), i as u32);
        }
        let mut removed = Vec::new();
        t.remove_range(Addr(0x104), 12, |a, v| removed.push((a, v)));
        removed.sort();
        assert_eq!(
            removed,
            vec![(Addr(0x104), 1), (Addr(0x108), 2), (Addr(0x10c), 3)]
        );
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(Addr(0x100)), Some(&0));
        assert_eq!(t.get(Addr(0x110)), Some(&4));
    }

    #[test]
    fn remove_range_across_directories_and_modes() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        t.insert(Addr(0xffc), 1);
        t.insert(Addr(0x1001), 2); // byte-mode chunk in the next directory
        t.insert(Addr(0x1100), 3);
        let mut n = 0;
        t.remove_range(Addr(0xff0), 0x200, |_, _| n += 1);
        assert_eq!(n, 3);
        assert!(t.is_empty());
        assert_eq!(t.index_bytes(), 0);
    }

    #[test]
    fn hot_cache_survives_directory_recycling() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        t.insert(Addr(0x1000), 1);
        assert_eq!(t.get(Addr(0x1000)), Some(&1)); // warms the cache
        t.remove(Addr(0x1000)); // frees the directory, must invalidate
        assert_eq!(t.get(Addr(0x1000)), None);
        // A different directory recycles the freed arena slot.
        t.insert(Addr(0x5000), 2);
        assert_eq!(t.get(Addr(0x1000)), None, "stale cache must not alias");
        assert_eq!(t.get(Addr(0x5000)), Some(&2));
    }

    #[test]
    fn for_each_visits_all_cells() {
        let mut t: PagedShadow<u32> = PagedShadow::new();
        t.insert(Addr(0x0), 1);
        t.insert(Addr(0x11), 2);
        t.insert(Addr(0x2024), 3);
        let mut got = Vec::new();
        t.for_each(|a, &v| got.push((a.0, v)));
        got.sort();
        assert_eq!(got, vec![(0x0, 1), (0x11, 2), (0x2024, 3)]);
        t.for_each_mut(|_, v| *v += 10);
        assert_eq!(t.get(Addr(0x11)), Some(&12));
    }
}
