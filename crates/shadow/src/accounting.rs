//! The memory-accounting model behind Tables 2 and 3.
//!
//! The paper measures detector memory "based on object size" (§V.A): the
//! bytes of the hash/indexing structures, of the vector clocks themselves,
//! and of the per-thread bitmaps. We reproduce that model: every detector
//! reports its structure sizes through a [`MemoryModel`] gauge after each
//! event, and the model records the per-class and total peaks.
//!
//! Modeled object sizes (32-bit tool, as in the paper):
//!
//! | object                          | bytes                          |
//! |---------------------------------|--------------------------------|
//! | hash chain entry header         | 16 + 4·slots (pointer array)   |
//! | VC cell (epoch form)            | 16                             |
//! | VC cell full-VC payload         | 16 + 4·width                   |
//! | bitmap chunk                    | 16 + `CHUNK_BYTES`             |

/// Modeled byte size of a hash chain entry with `slots` pointers.
pub const fn hash_entry_bytes(slots: usize) -> usize {
    16 + 4 * slots
}

/// Modeled byte size of one paged-store directory node: a 16-byte header
/// plus a pointer array with one entry per chunk of the directory's span
/// (the slot arrays hanging off it are charged separately, with the same
/// `16 + 4·slots` model as hash chain entries).
pub const fn paged_dir_bytes(chunks: usize) -> usize {
    16 + 4 * chunks
}

/// Modeled byte size of a vector-clock cell whose payload (full vector
/// clock) spans `width` threads; `width == 0` means the compressed epoch
/// form with no out-of-line payload.
pub const fn vc_cell_bytes(width: usize) -> usize {
    if width == 0 {
        16
    } else {
        16 + 16 + 4 * width
    }
}

/// Modeled byte size of one per-thread bitmap chunk.
pub const fn bitmap_chunk_bytes(chunk_payload: usize) -> usize {
    16 + chunk_payload
}

/// The accounting classes of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemClass {
    /// Hash tables + indexing arrays.
    Hash,
    /// Vector clocks (cells + full-VC payloads).
    VectorClock,
    /// Per-thread same-epoch bitmaps.
    Bitmap,
}

impl MemClass {
    /// All classes, in Table 2 column order.
    pub const ALL: [MemClass; 3] = [MemClass::Hash, MemClass::VectorClock, MemClass::Bitmap];

    fn index(self) -> usize {
        match self {
            MemClass::Hash => 0,
            MemClass::VectorClock => 1,
            MemClass::Bitmap => 2,
        }
    }
}

/// Gauge-style memory model: detectors `set` the current size of each
/// class (cheap — they maintain running byte counters) and the model keeps
/// peaks.
///
/// Besides bytes, the model tracks the number of live vector-clock objects
/// (Table 3's "Max. # of vector clocks") via [`MemoryModel::set_vc_count`].
#[derive(Clone, Debug, Default)]
pub struct MemoryModel {
    current: [usize; 3],
    peak: [usize; 3],
    peak_total: usize,
    vc_count: usize,
    peak_vc_count: usize,
    /// Optional cap on the modeled total; `None` means unbounded.
    budget: Option<usize>,
    /// Sticky: set the first time the budget was exceeded.
    breached: bool,
}

impl MemoryModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current byte size of `class` and updates peaks.
    #[inline]
    pub fn set(&mut self, class: MemClass, bytes: usize) {
        let i = class.index();
        self.current[i] = bytes;
        if bytes > self.peak[i] {
            self.peak[i] = bytes;
        }
        let total = self.current.iter().sum();
        if total > self.peak_total {
            self.peak_total = total;
        }
    }

    /// Adjusts the current byte size of `class` by a signed delta.
    #[inline]
    pub fn add(&mut self, class: MemClass, delta: isize) {
        let i = class.index();
        let cur = self.current[i] as isize + delta;
        debug_assert!(cur >= 0, "memory class went negative");
        self.set(class, cur.max(0) as usize);
    }

    /// Sets the current number of live vector-clock objects.
    #[inline]
    pub fn set_vc_count(&mut self, n: usize) {
        self.vc_count = n;
        if n > self.peak_vc_count {
            self.peak_vc_count = n;
        }
    }

    /// Current bytes of `class`.
    pub fn current(&self, class: MemClass) -> usize {
        self.current[class.index()]
    }

    /// Peak bytes of `class` over the run.
    pub fn peak(&self, class: MemClass) -> usize {
        self.peak[class.index()]
    }

    /// Peak of the *sum* of the three classes (Table 2 "Overhead total").
    ///
    /// Note the paper's observation on `dedup`: the peak of the total need
    /// not coincide with the peak of any class, so this is tracked
    /// separately rather than summing per-class peaks.
    pub fn peak_total(&self) -> usize {
        self.peak_total
    }

    /// Current total bytes.
    pub fn current_total(&self) -> usize {
        self.current.iter().sum()
    }

    /// Current number of live vector-clock objects.
    pub fn vc_count(&self) -> usize {
        self.vc_count
    }

    /// Peak number of live vector-clock objects (Table 3).
    pub fn peak_vc_count(&self) -> usize {
        self.peak_vc_count
    }

    /// Caps the modeled total at `bytes` (`None` removes the cap). The
    /// cap does not change accounting; detectors poll [`Self::over_budget`]
    /// off their hot path and react by evicting state.
    pub fn set_budget(&mut self, bytes: Option<usize>) {
        self.budget = bytes;
    }

    /// The configured cap, if any.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// True when the current modeled total exceeds the budget. Also
    /// latches the sticky [`Self::breached`] flag.
    #[inline]
    pub fn over_budget(&mut self) -> bool {
        match self.budget {
            Some(b) if self.current_total() > b => {
                self.breached = true;
                true
            }
            _ => false,
        }
    }

    /// True if the budget was ever exceeded during the run (sticky).
    pub fn breached(&self) -> bool {
        self.breached
    }

    /// Serializes the gauge state. The budget itself is *not* encoded —
    /// it is run configuration, reapplied by the caller after decode.
    pub fn encode(&self, w: &mut dgrace_trace::SnapshotWriter) {
        for v in self.current.iter().chain(self.peak.iter()) {
            w.u64(*v as u64);
        }
        w.u64(self.peak_total as u64);
        w.u64(self.vc_count as u64);
        w.u64(self.peak_vc_count as u64);
        w.bool(self.breached);
    }

    /// Rebuilds a gauge from [`MemoryModel::encode`]d bytes, with no
    /// budget set (the caller reapplies its configured budget).
    pub fn decode(
        r: &mut dgrace_trace::SnapshotReader<'_>,
    ) -> Result<Self, dgrace_trace::TraceError> {
        let mut m = MemoryModel::new();
        for v in m.current.iter_mut().chain(m.peak.iter_mut()) {
            *v = r.u64()? as usize;
        }
        m.peak_total = r.u64()? as usize;
        m.vc_count = r.u64()? as usize;
        m.peak_vc_count = r.u64()? as usize;
        m.breached = r.bool()?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_track_maxima() {
        let mut m = MemoryModel::new();
        m.set(MemClass::Hash, 100);
        m.set(MemClass::VectorClock, 50);
        m.set(MemClass::Hash, 30);
        assert_eq!(m.current(MemClass::Hash), 30);
        assert_eq!(m.peak(MemClass::Hash), 100);
        assert_eq!(m.peak_total(), 150);
        assert_eq!(m.current_total(), 80);
    }

    #[test]
    fn peak_total_is_not_sum_of_peaks() {
        let mut m = MemoryModel::new();
        // Hash peaks while VC is small...
        m.set(MemClass::Hash, 100);
        m.set(MemClass::Hash, 0);
        // ...then VC peaks while Hash is empty.
        m.set(MemClass::VectorClock, 90);
        assert_eq!(m.peak(MemClass::Hash), 100);
        assert_eq!(m.peak(MemClass::VectorClock), 90);
        // Peak *total* is 100, not 190 — the dedup effect.
        assert_eq!(m.peak_total(), 100);
    }

    #[test]
    fn add_applies_deltas() {
        let mut m = MemoryModel::new();
        m.add(MemClass::Bitmap, 64);
        m.add(MemClass::Bitmap, 64);
        m.add(MemClass::Bitmap, -32);
        assert_eq!(m.current(MemClass::Bitmap), 96);
        assert_eq!(m.peak(MemClass::Bitmap), 128);
    }

    #[test]
    fn vc_count_peak() {
        let mut m = MemoryModel::new();
        m.set_vc_count(10);
        m.set_vc_count(4);
        assert_eq!(m.vc_count(), 4);
        assert_eq!(m.peak_vc_count(), 10);
    }

    #[test]
    fn budget_breach_is_sticky() {
        let mut m = MemoryModel::new();
        assert!(!m.over_budget(), "no budget, never over");
        m.set_budget(Some(100));
        m.set(MemClass::Hash, 80);
        assert!(!m.over_budget());
        m.set(MemClass::VectorClock, 40);
        assert!(m.over_budget());
        assert!(m.breached());
        // Shrinking back under budget clears the condition but not the
        // sticky flag.
        m.set(MemClass::VectorClock, 0);
        assert!(!m.over_budget());
        assert!(m.breached());
        assert_eq!(m.budget(), Some(100));
    }

    #[test]
    fn modeled_sizes() {
        assert_eq!(hash_entry_bytes(32), 16 + 128);
        assert_eq!(hash_entry_bytes(128), 16 + 512);
        assert_eq!(vc_cell_bytes(0), 16);
        assert_eq!(vc_cell_bytes(4), 48);
        assert_eq!(bitmap_chunk_bytes(512), 528);
    }
}
