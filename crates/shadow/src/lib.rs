//! Shadow memory and memory accounting for `dgrace` detectors.
//!
//! This crate implements the indexing substrate of §IV of the paper:
//!
//! * [`ShadowTable`] — the chained hash table of Fig. 4. Addresses are
//!   hashed by their upper bits (`addr >> log2(m)`, m = 128 by default) to
//!   a chunk entry; each entry holds an indexing array of slot pointers.
//!   New entries start with `m/4` word-aligned slots ("the most common
//!   access pattern is word access") and are expanded to `m` byte slots
//!   when the first unaligned access hits the chunk.
//! * [`EpochBitmap`] — the per-thread bitmap used to answer "is this the
//!   first access to this location in my current epoch?" without touching
//!   the global shadow structure (§IV.A). The bitmap is reset at every
//!   lock release (i.e. at each new epoch of the thread).
//! * [`MemoryModel`] — the memory-accounting model that regenerates the
//!   *Hash / Vector clock / Bitmap* columns of Table 2 and the
//!   vector-clock population counts of Table 3. Sizes are modeled from the
//!   paper's 32-bit object layout so that measured overheads are
//!   comparable across detectors and independent of the host allocator.
//!
//! A **location** in this crate (and throughout `dgrace`) is the *base
//! address of an access* after granularity masking — an access `(addr,
//! size)` touches exactly one location, matching the paper's model where
//! second-epoch neighbors of `L` live at `L-size` and `L+size`.

//! ```
//! use dgrace_shadow::ShadowTable;
//! use dgrace_trace::Addr;
//!
//! let mut t: ShadowTable<u32> = ShadowTable::new(128);
//! t.insert(Addr(0x100), 7);         // word-mode chunk: 32 slots
//! let small = t.hash_bytes();
//! t.insert(Addr(0x103), 9);         // byte access → expand to 128 slots
//! assert!(t.hash_bytes() > small);
//! assert_eq!(t.get(Addr(0x100)), Some(&7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
mod bitmap;
pub mod governor;
mod hash;
mod paged;
mod slab;
pub mod store;
mod table;

pub use accounting::{MemClass, MemoryModel};
pub use bitmap::EpochBitmap;
pub use governor::{process_gauge, MemComponent, PressureLevel, ProcessGauge, Watermarks};
pub use hash::{FastMap, FibBuildHasher, FibHasher};
pub use paged::PagedShadow;
pub use slab::{Slab, SlabId};
pub use store::{HashSelect, PagedSelect, ShadowStore, StoreSelect};
pub use table::ShadowTable;
