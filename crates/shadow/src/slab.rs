//! A small slab allocator for shadow cells.
//!
//! The dynamic-granularity detector shares one vector-clock cell among
//! many locations. Using arena indices instead of reference-counted
//! pointers keeps cells cache-friendly, keeps the detector `Send` (so the
//! online runtime can put it behind a lock), and makes reference counting
//! explicit — the paper's `count` field on each shared vector clock.

/// A handle to a slab slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SlabId(u32);

impl SlabId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A slab of `T` with O(1) alloc/free and stable ids.
#[derive(Clone, Debug)]
pub struct Slab<T> {
    items: Vec<Option<T>>,
    free: Vec<u32>,
    live: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab {
            items: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `value`, returning its id.
    pub fn alloc(&mut self, value: T) -> SlabId {
        self.live += 1;
        if let Some(i) = self.free.pop() {
            debug_assert!(self.items[i as usize].is_none());
            self.items[i as usize] = Some(value);
            SlabId(i)
        } else {
            self.items.push(Some(value));
            SlabId((self.items.len() - 1) as u32)
        }
    }

    /// Removes and returns the value at `id`.
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn free(&mut self, id: SlabId) -> T {
        let v = self.items[id.index()].take().expect("double free in slab");
        self.free.push(id.0);
        self.live -= 1;
        v
    }

    /// Borrows the value at `id`.
    pub fn get(&self, id: SlabId) -> &T {
        self.items[id.index()].as_ref().expect("stale slab id")
    }

    /// Mutably borrows the value at `id`.
    pub fn get_mut(&mut self, id: SlabId) -> &mut T {
        self.items[id.index()].as_mut().expect("stale slab id")
    }

    /// Returns `true` if `id` refers to a live value.
    pub fn contains(&self, id: SlabId) -> bool {
        self.items.get(id.index()).is_some_and(Option::is_some)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no values are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over live `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlabId, &T)> {
        self.items
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (SlabId(i as u32), v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_free() {
        let mut s: Slab<String> = Slab::new();
        let a = s.alloc("a".into());
        let b = s.alloc("b".into());
        assert_eq!(s.get(a), "a");
        assert_eq!(s.get(b), "b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.free(a), "a");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ids_are_recycled() {
        let mut s: Slab<u32> = Slab::new();
        let a = s.alloc(1);
        s.free(a);
        let b = s.alloc(2);
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(*s.get(b), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut s: Slab<u32> = Slab::new();
        let a = s.alloc(1);
        s.free(a);
        s.free(a);
    }

    #[test]
    fn get_mut_modifies() {
        let mut s: Slab<u32> = Slab::new();
        let a = s.alloc(1);
        *s.get_mut(a) += 10;
        assert_eq!(*s.get(a), 11);
    }

    #[test]
    fn iter_skips_freed() {
        let mut s: Slab<u32> = Slab::new();
        let a = s.alloc(1);
        let _b = s.alloc(2);
        s.free(a);
        let vals: Vec<u32> = s.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![2]);
        assert!(!s.is_empty());
    }
}
