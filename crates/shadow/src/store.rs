//! The [`ShadowStore`] abstraction: what a detector needs from its shadow
//! memory, independent of how locations are indexed.
//!
//! Two implementations exist:
//!
//! * [`ShadowTable`](crate::ShadowTable) — the paper's chained hash table
//!   (Fig. 4), compact for sparse address use.
//! * [`PagedShadow`](crate::PagedShadow) — a TSan-style two-level
//!   direct-mapped table (page directory → fixed slot arrays), trading a
//!   little index memory for allocation-free, cache-friendly lookups on
//!   dense address ranges.
//!
//! Both keep the word→byte chunk-mode expansion, so an unaligned lookup in
//! a word-mode chunk misses identically in either store and race reports
//! are byte-identical across them (proven by `tests/store_equivalence.rs`).
//!
//! Detectors are generic over the store via [`StoreSelect`], a zero-sized
//! selector with a generic-associated store type. This keeps the concrete
//! cell types (which are private to each detector) out of public bounds:
//! `FastTrackOn<PagedSelect>` names a detector without naming its cells.

use std::fmt::Debug;

use dgrace_trace::Addr;

use crate::paged::PagedShadow;
use crate::table::ShadowTable;

/// Minimal shadow-memory interface shared by every store.
///
/// A **location** is an access base address after granularity masking.
/// Stores start chunks in *word mode* (only 4-aligned locations exist;
/// unaligned lookups miss) and expand a chunk to *byte mode* on the first
/// unaligned insert, preserving existing cells at `slot * 4`.
pub trait ShadowStore<T>: Default + Debug {
    /// Human-readable store name (for reports and benchmarks).
    const LABEL: &'static str;

    /// Looks up the cell for `addr`.
    fn get(&self, addr: Addr) -> Option<&T>;

    /// Looks up the cell for `addr` mutably.
    fn get_mut(&mut self, addr: Addr) -> Option<&mut T>;

    /// Inserts a cell for `addr`, creating or expanding the chunk as
    /// needed. Returns the previous cell, if any.
    fn insert(&mut self, addr: Addr, value: T) -> Option<T>;

    /// Removes the cell at `addr`, releasing chunk storage when it becomes
    /// empty. Unaligned addresses in word-mode chunks remove nothing.
    fn remove(&mut self, addr: Addr) -> Option<T>;

    /// Removes every cell with address in `[base, base+len)`, invoking `f`
    /// on each removed `(addr, cell)` in ascending address order per chunk.
    fn remove_range(&mut self, base: Addr, len: u64, f: impl FnMut(Addr, T));

    /// The nearest populated location strictly below `addr`, scanning at
    /// most `max_dist` bytes back.
    fn nearest_predecessor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)>;

    /// The nearest populated location strictly above `addr`, scanning at
    /// most `max_dist` bytes forward.
    fn nearest_successor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)>;

    /// Number of populated cells.
    fn len(&self) -> usize;

    /// Returns `true` if no cells are populated.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Modeled bytes of the indexing structure (the Table 2 `Hash` column;
    /// for the paged store, directory headers + slot arrays).
    fn index_bytes(&self) -> usize;

    /// Picks a victim region for memory-budget eviction: the byte span of
    /// one resident backing chunk, avoiding the most recently touched
    /// region where the store tracks one. Returns `None` when empty. The
    /// choice is deterministic for a given store state, so budget-degraded
    /// runs are reproducible; the caller evicts with
    /// [`ShadowStore::remove_range`].
    fn victim_region(&self) -> Option<(Addr, u64)>;

    /// Applies `f` to every populated cell, in unspecified order.
    fn for_each(&self, f: impl FnMut(Addr, &T));

    /// Applies `f` to every populated cell mutably, in unspecified order.
    fn for_each_mut(&mut self, f: impl FnMut(Addr, &mut T));

    /// Base addresses of chunks currently in byte mode, in ascending
    /// order. Together with the populated cells this fully determines the
    /// index structure, so snapshot restore can rebuild a store whose
    /// modeled footprint and lookup behaviour match the original exactly.
    fn byte_mode_chunks(&self) -> Vec<Addr>;

    /// Forces the chunk containing `addr` into byte mode, preserving
    /// existing cells exactly as an unaligned insert would. No-op when the
    /// chunk is absent or already expanded.
    fn force_byte_mode(&mut self, addr: Addr);
}

impl<T: Debug> ShadowStore<T> for ShadowTable<T> {
    const LABEL: &'static str = "hash";

    #[inline]
    fn get(&self, addr: Addr) -> Option<&T> {
        ShadowTable::get(self, addr)
    }

    #[inline]
    fn get_mut(&mut self, addr: Addr) -> Option<&mut T> {
        ShadowTable::get_mut(self, addr)
    }

    #[inline]
    fn insert(&mut self, addr: Addr, value: T) -> Option<T> {
        ShadowTable::insert(self, addr, value)
    }

    #[inline]
    fn remove(&mut self, addr: Addr) -> Option<T> {
        ShadowTable::remove(self, addr)
    }

    #[inline]
    fn remove_range(&mut self, base: Addr, len: u64, f: impl FnMut(Addr, T)) {
        ShadowTable::remove_range(self, base, len, f)
    }

    #[inline]
    fn nearest_predecessor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)> {
        ShadowTable::nearest_predecessor(self, addr, max_dist)
    }

    #[inline]
    fn nearest_successor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)> {
        ShadowTable::nearest_successor(self, addr, max_dist)
    }

    #[inline]
    fn len(&self) -> usize {
        ShadowTable::len(self)
    }

    #[inline]
    fn index_bytes(&self) -> usize {
        ShadowTable::hash_bytes(self)
    }

    #[inline]
    fn victim_region(&self) -> Option<(Addr, u64)> {
        ShadowTable::victim_region(self)
    }

    fn for_each(&self, mut f: impl FnMut(Addr, &T)) {
        for (addr, cell) in ShadowTable::iter(self) {
            f(addr, cell);
        }
    }

    fn for_each_mut(&mut self, f: impl FnMut(Addr, &mut T)) {
        ShadowTable::for_each_mut(self, f)
    }

    #[inline]
    fn byte_mode_chunks(&self) -> Vec<Addr> {
        ShadowTable::byte_mode_chunks(self)
    }

    #[inline]
    fn force_byte_mode(&mut self, addr: Addr) {
        ShadowTable::force_byte_mode(self, addr)
    }
}

/// Zero-sized selector of a shadow-store implementation.
///
/// Detector types take a `StoreSelect` parameter instead of a store type
/// directly, so their (private) cell types never appear in public bounds:
/// `DjitOn<PagedSelect>` is spelled without naming `Djit`'s cell.
pub trait StoreSelect:
    Copy + Clone + Debug + Default + Send + Sync + Eq + std::hash::Hash + 'static
{
    /// The store this selector picks, instantiable at any cell type.
    type Store<T: Debug + Send>: ShadowStore<T> + Debug + Send;

    /// Human-readable store name.
    const LABEL: &'static str;

    /// Suffix appended to detector names for non-default stores, so
    /// reports distinguish `fasttrack-byte` from `fasttrack-byte+paged`.
    const NAME_SUFFIX: &'static str;
}

/// Selects the chained-hash [`ShadowTable`] (the default store).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct HashSelect;

impl StoreSelect for HashSelect {
    type Store<T: Debug + Send> = ShadowTable<T>;
    const LABEL: &'static str = "hash";
    const NAME_SUFFIX: &'static str = "";
}

/// Selects the two-level direct-mapped [`PagedShadow`] store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PagedSelect;

impl StoreSelect for PagedSelect {
    type Store<T: Debug + Send> = PagedShadow<T>;
    const LABEL: &'static str = "paged";
    const NAME_SUFFIX: &'static str = "+paged";
}
