//! The chained-hash shadow table of Fig. 4.
//!
//! Addresses are split into an *upper* part (hashed to find the chunk
//! entry) and a *lower* part (index into the entry's slot array). Entries
//! start in **word mode** — `m/4` slots, one per word-aligned address —
//! and are expanded to **byte mode** (`m` slots, one per byte address) when
//! the first non-word-aligned access reaches the chunk. This captures the
//! paper's observation that most C/C++ accesses are word-sized and aligned,
//! so most chunks never pay for byte-level indexing.

use dgrace_trace::Addr;

use crate::hash::FastMap;

use crate::accounting::hash_entry_bytes;

/// Default slots per chunk (the paper's example uses m = 128).
pub const DEFAULT_M: usize = 128;

#[derive(Clone, Debug)]
struct Entry<T> {
    /// `m/4` slots in word mode, `m` slots in byte mode.
    slots: Vec<Option<T>>,
    byte_mode: bool,
    /// Populated slots (O(1) emptiness checks on removal).
    live: u32,
}

/// A shadow table mapping *locations* (access base addresses) to cells of
/// type `T`.
///
/// The table tracks its own modeled byte footprint (entry headers + slot
/// arrays) for the `Hash` column of Table 2.
#[derive(Clone, Debug)]
pub struct ShadowTable<T> {
    m: usize,
    shift: u32,
    map: FastMap<u64, Entry<T>>,
    live: usize,
    bytes: usize,
}

impl<T> Default for ShadowTable<T> {
    fn default() -> Self {
        Self::new(DEFAULT_M)
    }
}

impl<T> ShadowTable<T> {
    /// Creates a table with `m` slots per chunk. `m` must be a power of two
    /// and at least 4.
    pub fn new(m: usize) -> Self {
        assert!(
            m.is_power_of_two() && m >= 4,
            "m must be a power of two >= 4"
        );
        ShadowTable {
            m,
            shift: m.trailing_zeros(),
            map: FastMap::default(),
            live: 0,
            bytes: 0,
        }
    }

    #[inline]
    fn key(&self, addr: Addr) -> u64 {
        addr.0 >> self.shift
    }

    #[inline]
    fn low(&self, addr: Addr) -> usize {
        (addr.0 & (self.m as u64 - 1)) as usize
    }

    /// Slot index of `addr` within `entry`, or `None` if the address is
    /// unaligned and the entry is still in word mode.
    #[inline]
    fn slot_of(&self, entry: &Entry<T>, addr: Addr) -> Option<usize> {
        let low = self.low(addr);
        if entry.byte_mode {
            Some(low)
        } else if low.is_multiple_of(4) {
            Some(low / 4)
        } else {
            None
        }
    }

    /// Looks up the cell for `addr`.
    pub fn get(&self, addr: Addr) -> Option<&T> {
        let entry = self.map.get(&self.key(addr))?;
        let slot = self.slot_of(entry, addr)?;
        entry.slots[slot].as_ref()
    }

    /// Looks up the cell for `addr` mutably.
    pub fn get_mut(&mut self, addr: Addr) -> Option<&mut T> {
        let key = self.key(addr);
        let entry = self.map.get(&key)?;
        let slot = self.slot_of(entry, addr)?;
        self.map.get_mut(&key)?.slots[slot].as_mut()
    }

    /// Inserts a cell for `addr`, creating or expanding the chunk entry as
    /// needed. Returns the previous cell, if any.
    pub fn insert(&mut self, addr: Addr, value: T) -> Option<T> {
        let m = self.m;
        let key = self.key(addr);
        let aligned = addr.0.is_multiple_of(4);
        let mut created = false;
        let entry = self.map.entry(key).or_insert_with(|| {
            // "When a new hash entry is created, it starts with an array of
            // m/4 pointers since the most common access pattern is word
            // access."
            created = true;
            Entry {
                slots: (0..m / 4).map(|_| None).collect(),
                byte_mode: false,
                live: 0,
            }
        });
        if created {
            self.bytes += hash_entry_bytes(m / 4);
        }
        if !entry.byte_mode && !aligned {
            // "When a byte access is detected, the array is expanded to
            // have m pointers."
            let mut slots: Vec<Option<T>> = (0..m).map(|_| None).collect();
            for (i, cell) in entry.slots.drain(..).enumerate() {
                slots[i * 4] = cell;
            }
            entry.slots = slots;
            entry.byte_mode = true;
            self.bytes += hash_entry_bytes(m) - hash_entry_bytes(m / 4);
        }
        let slot = if entry.byte_mode {
            (addr.0 & (m as u64 - 1)) as usize
        } else {
            ((addr.0 & (m as u64 - 1)) / 4) as usize
        };
        let prev = entry.slots[slot].replace(value);
        if prev.is_none() {
            self.live += 1;
            entry.live += 1;
        }
        prev
    }

    /// Removes the cell at `addr`, dropping the chunk entry when it
    /// becomes empty (as `free()` does in §IV.B).
    pub fn remove(&mut self, addr: Addr) -> Option<T> {
        let key = self.key(addr);
        let m = self.m;
        let entry = self.map.get_mut(&key)?;
        let low = (addr.0 & (m as u64 - 1)) as usize;
        let slot = if entry.byte_mode {
            low
        } else if low.is_multiple_of(4) {
            low / 4
        } else {
            return None;
        };
        let removed = entry.slots[slot].take();
        if removed.is_some() {
            self.live -= 1;
            entry.live -= 1;
            if entry.live == 0 {
                let released = hash_entry_bytes(entry.slots.len());
                self.map.remove(&key);
                self.bytes -= released;
            }
        }
        removed
    }

    /// Removes every cell with address in `[base, base+len)`, invoking `f`
    /// on each removed `(addr, cell)` — used when a block is freed.
    pub fn remove_range(&mut self, base: Addr, len: u64, mut f: impl FnMut(Addr, T)) {
        let first_key = self.key(base);
        let last_key = self.key(Addr(base.0 + len.saturating_sub(1)));
        for key in first_key..=last_key {
            let Some(entry) = self.map.get_mut(&key) else {
                continue;
            };
            let stride = if entry.byte_mode { 1 } else { 4 };
            let mut removed_any = false;
            for slot in 0..entry.slots.len() {
                let addr = Addr((key << self.shift) + (slot as u64) * stride);
                if addr.0 >= base.0 && addr.0 < base.0 + len {
                    if let Some(cell) = entry.slots[slot].take() {
                        self.live -= 1;
                        entry.live -= 1;
                        removed_any = true;
                        f(addr, cell);
                    }
                }
            }
            if removed_any && entry.live == 0 {
                let released = hash_entry_bytes(entry.slots.len());
                self.map.remove(&key);
                self.bytes -= released;
            }
        }
    }

    /// Collects the addresses of every populated cell in
    /// `[base, base+len)` by direct chunk iteration — the cheap way to
    /// enumerate a freed block's locations.
    pub fn addrs_in_range(&self, base: Addr, len: u64) -> Vec<Addr> {
        let mut out = Vec::new();
        if len == 0 {
            return out;
        }
        let first_key = self.key(base);
        let last_key = self.key(Addr(base.0 + len - 1));
        for key in first_key..=last_key {
            let Some(entry) = self.map.get(&key) else {
                continue;
            };
            let stride = if entry.byte_mode { 1 } else { 4 };
            for (slot, cell) in entry.slots.iter().enumerate() {
                if cell.is_some() {
                    let addr = Addr((key << self.shift) + (slot as u64) * stride);
                    if addr.0 >= base.0 && addr.0 < base.0 + len {
                        out.push(addr);
                    }
                }
            }
        }
        out
    }

    /// The nearest populated location strictly below `addr`, scanning at
    /// most `max_dist` bytes back. Used for the first-epoch neighbor search
    /// ("the nearest predecessor ... that has valid vector clocks").
    pub fn nearest_predecessor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)> {
        self.scan(addr, max_dist, -1)
    }

    /// The nearest populated location strictly above `addr`, scanning at
    /// most `max_dist` bytes forward.
    pub fn nearest_successor(&self, addr: Addr, max_dist: u64) -> Option<(Addr, &T)> {
        self.scan(addr, max_dist, 1)
    }

    /// Slot-wise directional scan: iterates chunk entries outward from
    /// `addr` and, within a present entry, walks its slot array directly
    /// (4-byte stride in word mode), so absent chunks cost one hash probe
    /// and dense chunks cost one probe per *slot*, not per byte.
    fn scan(&self, addr: Addr, max_dist: u64, dir: i64) -> Option<(Addr, &T)> {
        if max_dist == 0 {
            return None;
        }
        let (lo, hi) = if dir > 0 {
            (addr.0 + 1, addr.0.saturating_add(max_dist))
        } else {
            (addr.0.saturating_sub(max_dist), addr.0.saturating_sub(1))
        };
        if lo > hi || (dir < 0 && addr.0 == 0) {
            return None;
        }
        let first_key = self.key(Addr(if dir > 0 { lo } else { hi }));
        let last_key = self.key(Addr(if dir > 0 { hi } else { lo }));
        let mut key = first_key;
        loop {
            if let Some(e) = self.map.get(&key) {
                let stride = if e.byte_mode { 1u64 } else { 4 };
                let chunk_base = key << self.shift;
                let chunk_end = chunk_base + self.m as u64 - 1;
                // Clamp the slot range to [lo, hi] within this chunk.
                let from = lo.max(chunk_base);
                let to = hi.min(chunk_end);
                if from <= to {
                    // Slot indices covering [from, to], rounded inward.
                    let s_lo = (from - chunk_base).div_ceil(stride);
                    let s_hi = (to - chunk_base) / stride;
                    if s_lo <= s_hi {
                        let found = if dir > 0 {
                            (s_lo..=s_hi).find(|&s| e.slots[s as usize].is_some())
                        } else {
                            (s_lo..=s_hi).rev().find(|&s| e.slots[s as usize].is_some())
                        };
                        if let Some(s) = found {
                            let a = Addr(chunk_base + s * stride);
                            return e.slots[s as usize].as_ref().map(|c| (a, c));
                        }
                    }
                }
            }
            if key == last_key {
                return None;
            }
            key = if dir > 0 { key + 1 } else { key - 1 };
        }
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no cells are populated.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Picks a victim chunk for memory-budget eviction: the span of the
    /// lowest-keyed resident chunk. The hash table keeps no recency
    /// information, so "lowest address" stands in for "cold"; the choice
    /// is deterministic for a given table state.
    pub fn victim_region(&self) -> Option<(Addr, u64)> {
        let key = self.map.keys().min()?;
        Some((Addr(key << self.shift), self.m as u64))
    }

    /// Modeled bytes of the hash structure (entry headers + slot arrays).
    pub fn hash_bytes(&self) -> usize {
        self.bytes
    }

    /// Base addresses of chunks currently in byte mode, ascending.
    /// Snapshot restore replays these through
    /// [`ShadowTable::force_byte_mode`] so the rebuilt index matches the
    /// live one byte-for-byte (a byte-mode chunk whose only unaligned
    /// cells were removed stays expanded).
    pub fn byte_mode_chunks(&self) -> Vec<Addr> {
        let mut out: Vec<Addr> = self
            .map
            .iter()
            .filter(|(_, e)| e.byte_mode)
            .map(|(key, _)| Addr(key << self.shift))
            .collect();
        out.sort_unstable();
        out
    }

    /// Forces the chunk containing `addr` into byte mode, preserving
    /// existing cells exactly as an unaligned insert would. No-op when
    /// the chunk is absent or already expanded.
    pub fn force_byte_mode(&mut self, addr: Addr) {
        let key = self.key(addr);
        let m = self.m;
        let Some(entry) = self.map.get_mut(&key) else {
            return;
        };
        if entry.byte_mode {
            return;
        }
        let mut slots: Vec<Option<T>> = (0..m).map(|_| None).collect();
        for (i, cell) in entry.slots.drain(..).enumerate() {
            slots[i * 4] = cell;
        }
        entry.slots = slots;
        entry.byte_mode = true;
        self.bytes += hash_entry_bytes(m) - hash_entry_bytes(m / 4);
    }

    /// Iterates populated `(addr, cell)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &T)> {
        self.map.iter().flat_map(move |(key, entry)| {
            let stride = if entry.byte_mode { 1 } else { 4 };
            entry
                .slots
                .iter()
                .enumerate()
                .filter_map(move |(slot, cell)| {
                    cell.as_ref()
                        .map(|c| (Addr((key << self.shift) + (slot as u64) * stride), c))
                })
        })
    }

    /// Applies `f` to every populated cell mutably.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(Addr, &mut T)) {
        let shift = self.shift;
        for (key, entry) in self.map.iter_mut() {
            let stride = if entry.byte_mode { 1 } else { 4 };
            for (slot, cell) in entry.slots.iter_mut().enumerate() {
                if let Some(c) = cell.as_mut() {
                    f(Addr((key << shift) + (slot as u64) * stride), c);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_word_aligned() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        assert!(t.insert(Addr(0x100), 7).is_none());
        assert_eq!(t.get(Addr(0x100)), Some(&7));
        assert_eq!(t.get(Addr(0x104)), None);
        assert_eq!(t.insert(Addr(0x100), 9), Some(7));
        assert_eq!(t.remove(Addr(0x100)), Some(9));
        assert!(t.is_empty());
        assert_eq!(t.hash_bytes(), 0);
    }

    #[test]
    fn victim_region_is_lowest_chunk() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        assert_eq!(t.victim_region(), None);
        t.insert(Addr(0x1000), 1);
        t.insert(Addr(0x200), 2);
        assert_eq!(t.victim_region(), Some((Addr(0x200), 128)));
        t.remove(Addr(0x200));
        assert_eq!(t.victim_region(), Some((Addr(0x1000), 128)));
        // Evicting the victim empties the table.
        let (base, len) = t.victim_region().unwrap();
        let mut removed = 0;
        t.remove_range(base, len, |_, _| removed += 1);
        assert_eq!(removed, 1);
        assert_eq!(t.victim_region(), None);
    }

    #[test]
    fn word_mode_starts_small_and_expands_on_byte_access() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        t.insert(Addr(0x100), 1);
        // word mode: 32 slots
        assert_eq!(t.hash_bytes(), hash_entry_bytes(32));
        // An unaligned access expands the chunk to 128 slots...
        t.insert(Addr(0x103), 2);
        assert_eq!(t.hash_bytes(), hash_entry_bytes(128));
        // ...and preserves the existing cell.
        assert_eq!(t.get(Addr(0x100)), Some(&1));
        assert_eq!(t.get(Addr(0x103)), Some(&2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unaligned_lookup_in_word_mode_is_none() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        t.insert(Addr(0x100), 1);
        assert_eq!(t.get(Addr(0x101)), None);
        assert_eq!(t.remove(Addr(0x101)), None);
    }

    #[test]
    fn distinct_chunks_are_independent() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        t.insert(Addr(0x0), 1);
        t.insert(Addr(0x80), 2); // next chunk for m=128
        t.insert(Addr(0x81), 3); // expands only the second chunk
        assert_eq!(t.hash_bytes(), hash_entry_bytes(32) + hash_entry_bytes(128));
        assert_eq!(t.get(Addr(0x0)), Some(&1));
        assert_eq!(t.get(Addr(0x80)), Some(&2));
        assert_eq!(t.get(Addr(0x81)), Some(&3));
    }

    #[test]
    fn nearest_neighbors_within_and_across_chunks() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        t.insert(Addr(0x100), 10);
        t.insert(Addr(0x108), 11);
        // Predecessor of 0x108 is 0x100 (8 bytes back).
        assert_eq!(
            t.nearest_predecessor(Addr(0x108), 16),
            Some((Addr(0x100), &10))
        );
        // Successor of 0x100 is 0x108.
        assert_eq!(
            t.nearest_successor(Addr(0x100), 16),
            Some((Addr(0x108), &11))
        );
        // Bounded by max_dist.
        assert_eq!(t.nearest_predecessor(Addr(0x108), 4), None);
        // Across a chunk boundary (0x180 is in the next chunk).
        t.insert(Addr(0x180), 12);
        assert_eq!(
            t.nearest_successor(Addr(0x108), 256),
            Some((Addr(0x180), &12))
        );
        assert_eq!(
            t.nearest_predecessor(Addr(0x180), 256),
            Some((Addr(0x108), &11))
        );
    }

    #[test]
    fn predecessor_stops_at_zero() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        t.insert(Addr(0x0), 1);
        assert_eq!(t.nearest_predecessor(Addr(0x0), 64), None);
        assert_eq!(t.nearest_predecessor(Addr(0x4), 64), Some((Addr(0x0), &1)));
    }

    #[test]
    fn remove_range_frees_blocks() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        for i in 0..8u64 {
            t.insert(Addr(0x100 + i * 4), i as u32);
        }
        let mut removed = Vec::new();
        t.remove_range(Addr(0x104), 12, |a, v| removed.push((a, v)));
        removed.sort();
        assert_eq!(
            removed,
            vec![(Addr(0x104), 1), (Addr(0x108), 2), (Addr(0x10c), 3)]
        );
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(Addr(0x100)), Some(&0));
        assert_eq!(t.get(Addr(0x110)), Some(&4));
    }

    #[test]
    fn remove_range_across_chunks_and_modes() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        t.insert(Addr(0x7c), 1);
        t.insert(Addr(0x81), 2); // byte-mode chunk
        t.insert(Addr(0x100), 3);
        let mut n = 0;
        t.remove_range(Addr(0x70), 0x100, |_, _| n += 1);
        assert_eq!(n, 3);
        assert!(t.is_empty());
        assert_eq!(t.hash_bytes(), 0);
    }

    #[test]
    fn iter_visits_all_cells() {
        let mut t: ShadowTable<u32> = ShadowTable::new(16);
        t.insert(Addr(0x0), 1);
        t.insert(Addr(0x11), 2);
        t.insert(Addr(0x24), 3);
        let mut got: Vec<_> = t.iter().map(|(a, &v)| (a.0, v)).collect();
        got.sort();
        assert_eq!(got, vec![(0x0, 1), (0x11, 2), (0x24, 3)]);
    }

    #[test]
    fn for_each_mut_updates_cells() {
        let mut t: ShadowTable<u32> = ShadowTable::new(16);
        t.insert(Addr(0x0), 1);
        t.insert(Addr(0x4), 2);
        t.for_each_mut(|_, v| *v += 10);
        assert_eq!(t.get(Addr(0x0)), Some(&11));
        assert_eq!(t.get(Addr(0x4)), Some(&12));
    }

    #[test]
    fn scan_skips_absent_chunks_efficiently() {
        let mut t: ShadowTable<u32> = ShadowTable::new(128);
        t.insert(Addr(0x10000), 1);
        t.insert(Addr(0x0), 2);
        // Long-distance search still terminates and finds the neighbor.
        assert_eq!(
            t.nearest_predecessor(Addr(0x10000), 0x10000),
            Some((Addr(0x0), &2))
        );
        assert_eq!(
            t.nearest_successor(Addr(0x0), 0x10000),
            Some((Addr(0x10000), &1))
        );
    }
}
