//! Per-thread same-epoch access bitmaps (§IV.A).
//!
//! DJIT+-family detectors only need to process the *first* read and the
//! first write of each location in an epoch. Answering "have I already
//! accessed this location in my current epoch?" from the global shadow
//! structure would require synchronized lookups, so the paper gives every
//! thread a private bitmap: the first access sets a bit, and the bitmap is
//! reset at every lock release (the start of the thread's next epoch).

use dgrace_trace::{Addr, SnapshotReader, SnapshotWriter, TraceError};

use crate::hash::FastMap;

use crate::accounting::bitmap_chunk_bytes;

/// Addresses covered by one chunk.
const CHUNK_SPAN: u64 = 2048;
/// Two bits (read, write) per address → payload bytes per chunk.
const CHUNK_PAYLOAD: usize = (CHUNK_SPAN as usize * 2) / 8;

/// A per-thread bitmap recording which locations this thread has already
/// read / written during its current epoch.
///
/// Two bits are kept per byte address (one for reads, one for writes);
/// chunks are allocated lazily as 2048-address spans.
#[derive(Clone, Debug, Default)]
pub struct EpochBitmap {
    chunks: FastMap<u64, Box<[u8; CHUNK_PAYLOAD]>>,
    /// High-water mark of simultaneously allocated chunks, for accounting.
    peak_chunks: usize,
}

impl EpochBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if `(addr, is_write)` is already marked.
    #[inline]
    pub fn test(&self, addr: Addr, is_write: bool) -> bool {
        let (key, byte, mask) = locate(addr, is_write);
        self.chunks.get(&key).is_some_and(|c| c[byte] & mask != 0)
    }

    /// Marks `(addr, is_write)`; returns `true` if it was already set.
    #[inline]
    pub fn test_and_set(&mut self, addr: Addr, is_write: bool) -> bool {
        let (key, byte, mask) = locate(addr, is_write);
        let chunk = self
            .chunks
            .entry(key)
            .or_insert_with(|| Box::new([0u8; CHUNK_PAYLOAD]));
        let was = chunk[byte] & mask != 0;
        chunk[byte] |= mask;
        if self.chunks.len() > self.peak_chunks {
            self.peak_chunks = self.chunks.len();
        }
        was
    }

    /// A *write* in the current epoch also covers subsequent reads for the
    /// purpose of the first-access filter in FastTrack (a read after a
    /// write by the same thread in the same epoch cannot be the first of a
    /// new race). This checks both planes.
    #[inline]
    pub fn test_either(&self, addr: Addr) -> bool {
        let (key, byte, _) = locate(addr, false);
        let both = read_mask(addr) | write_mask(addr);
        self.chunks.get(&key).is_some_and(|c| c[byte] & both != 0)
    }

    /// Resets the bitmap — called at every lock release, when the thread's
    /// next epoch begins.
    pub fn reset(&mut self) {
        self.chunks.clear();
    }

    /// Current modeled bytes.
    pub fn bytes(&self) -> usize {
        self.chunks.len() * bitmap_chunk_bytes(CHUNK_PAYLOAD)
    }

    /// Peak modeled bytes over the bitmap's lifetime.
    pub fn peak_bytes(&self) -> usize {
        self.peak_chunks * bitmap_chunk_bytes(CHUNK_PAYLOAD)
    }

    /// Number of chunk allocations currently live.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Serializes the bitmap: chunks sorted by key (so two bitmaps with
    /// the same contents encode to the same bytes), then the peak.
    pub fn encode(&self, w: &mut SnapshotWriter) {
        let mut keys: Vec<u64> = self.chunks.keys().copied().collect();
        keys.sort_unstable();
        w.count(keys.len());
        for key in keys {
            w.u64(key);
            w.raw(&self.chunks[&key][..]);
        }
        w.u64(self.peak_chunks as u64);
    }

    /// Rebuilds a bitmap from [`EpochBitmap::encode`]d bytes.
    pub fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, TraceError> {
        let n = r.count("bitmap chunks")?;
        let mut chunks = FastMap::default();
        for _ in 0..n {
            let key = r.u64()?;
            let mut payload = Box::new([0u8; CHUNK_PAYLOAD]);
            r.raw(&mut payload[..])?;
            chunks.insert(key, payload);
        }
        let peak_chunks = r.u64()? as usize;
        Ok(EpochBitmap {
            chunks,
            peak_chunks,
        })
    }
}

#[inline]
fn read_mask(addr: Addr) -> u8 {
    1 << (((addr.0 % 4) as u8) * 2)
}

#[inline]
fn write_mask(addr: Addr) -> u8 {
    2 << (((addr.0 % 4) as u8) * 2)
}

/// Maps `(addr, plane)` to `(chunk key, byte index, bit mask)`.
#[inline]
fn locate(addr: Addr, is_write: bool) -> (u64, usize, u8) {
    let key = addr.0 / CHUNK_SPAN;
    let off = (addr.0 % CHUNK_SPAN) as usize;
    let byte = off / 4;
    let mask = if is_write {
        write_mask(addr)
    } else {
        read_mask(addr)
    };
    (key, byte, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_test() {
        let mut b = EpochBitmap::new();
        let a = Addr(0x1234);
        assert!(!b.test(a, false));
        assert!(!b.test_and_set(a, false));
        assert!(b.test(a, false));
        assert!(b.test_and_set(a, false));
        // The write plane is independent.
        assert!(!b.test(a, true));
        assert!(!b.test_and_set(a, true));
        assert!(b.test(a, true));
    }

    #[test]
    fn neighbors_do_not_alias() {
        let mut b = EpochBitmap::new();
        for off in 0..8u64 {
            assert!(!b.test_and_set(Addr(0x100 + off), false));
        }
        for off in 0..8u64 {
            assert!(b.test(Addr(0x100 + off), false));
            assert!(!b.test(Addr(0x100 + off), true));
        }
        assert!(!b.test(Addr(0xff), false));
        assert!(!b.test(Addr(0x108), false));
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = EpochBitmap::new();
        b.test_and_set(Addr(7), true);
        b.test_and_set(Addr(70_000), false);
        assert_eq!(b.chunk_count(), 2);
        b.reset();
        assert!(!b.test(Addr(7), true));
        assert_eq!(b.chunk_count(), 0);
        assert_eq!(b.bytes(), 0);
        // Peak survives the reset.
        assert!(b.peak_bytes() >= 2 * bitmap_chunk_bytes(CHUNK_PAYLOAD));
    }

    #[test]
    fn test_either_sees_both_planes() {
        let mut b = EpochBitmap::new();
        b.test_and_set(Addr(0x40), true);
        assert!(b.test_either(Addr(0x40)));
        assert!(!b.test_either(Addr(0x41)));
        b.test_and_set(Addr(0x41), false);
        assert!(b.test_either(Addr(0x41)));
    }

    #[test]
    fn chunk_boundaries() {
        let mut b = EpochBitmap::new();
        b.test_and_set(Addr(CHUNK_SPAN - 1), false);
        b.test_and_set(Addr(CHUNK_SPAN), false);
        assert_eq!(b.chunk_count(), 2);
        assert!(b.test(Addr(CHUNK_SPAN - 1), false));
        assert!(b.test(Addr(CHUNK_SPAN), false));
    }
}
