//! A fast hasher for shadow-memory keys.
//!
//! Shadow tables and bitmaps are keyed by address-derived `u64`s and are
//! probed several times per instrumented access; SipHash (std's default,
//! HashDoS-resistant) is the wrong trade-off here. This is Fibonacci
//! (multiplicative) hashing — one multiply, high bits well mixed —
//! which is what race-detection shadow maps want.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for integer keys.
#[derive(Default)]
pub struct FibHasher {
    state: u64,
}

/// 2^64 / φ, the classic Fibonacci-hashing multiplier.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for FibHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (used for non-integer keys, rare here).
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(K);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.state = v.wrapping_mul(K) ^ (v >> 32);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FibHasher`].
pub type FibBuildHasher = BuildHasherDefault<FibHasher>;

/// A `HashMap` using [`FibHasher`] — the map type of all shadow
/// structures.
pub type FastMap<K, V> = HashMap<K, V, FibBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut h1 = FibHasher::default();
        h1.write_u64(1);
        let mut h2 = FibHasher::default();
        h2.write_u64(2);
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_works() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn sequential_keys_spread() {
        // Adjacent chunk keys must not collide in the low bits the map
        // actually uses.
        let hashes: Vec<u64> = (0..64u64)
            .map(|k| {
                let mut h = FibHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        let mut low7: Vec<u64> = hashes.iter().map(|h| h >> 57).collect();
        low7.sort();
        low7.dedup();
        assert!(low7.len() > 32, "poor spread: {}", low7.len());
    }

    #[test]
    fn byte_path_hashes() {
        let mut h = FibHasher::default();
        h.write(b"abc");
        assert_ne!(h.finish(), 0);
    }
}
