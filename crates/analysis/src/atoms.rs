//! Address-space atomization.
//!
//! The passes classify *byte ranges*, but accesses overlap arbitrarily
//! (a `U64` write over two `U32` reads, etc.). Splitting the address
//! space at every access boundary yields **atoms**: maximal intervals
//! that every access either fully contains or does not intersect. Each
//! pass then keeps one state cell per atom, and every access maps to a
//! contiguous run of atoms.

use dgrace_trace::{Addr, Trace};

/// The atomized address space of one trace.
pub(crate) struct Atoms {
    /// Sorted boundary addresses; atom `i` is `[bounds[i], bounds[i+1])`.
    bounds: Vec<u64>,
    /// Whether atom `i` is touched by at least one access (gaps between
    /// distant accesses become atoms too, but carry no classification).
    covered: Vec<bool>,
}

impl Atoms {
    /// Splits the address space at every access boundary of `trace`.
    pub fn build(trace: &Trace) -> Self {
        let mut bounds: Vec<u64> = Vec::new();
        for ev in trace {
            if let Some((addr, size, _)) = ev.access() {
                bounds.push(addr.0);
                bounds.push(addr.0 + size.bytes());
            }
        }
        bounds.sort_unstable();
        bounds.dedup();
        let n = bounds.len().saturating_sub(1);
        let mut atoms = Atoms {
            bounds,
            covered: vec![false; n],
        };
        for ev in trace {
            if let Some((addr, size, _)) = ev.access() {
                for i in atoms.span(addr, size.bytes()) {
                    atoms.covered[i] = true;
                }
            }
        }
        atoms
    }

    /// Number of atoms (covered or not).
    pub fn len(&self) -> usize {
        self.covered.len()
    }

    /// Whether some access touches atom `i`.
    pub fn is_covered(&self, i: usize) -> bool {
        self.covered[i]
    }

    /// The byte interval `[start, end)` of atom `i`.
    pub fn interval(&self, i: usize) -> (u64, u64) {
        (self.bounds[i], self.bounds[i + 1])
    }

    /// The atom indices an access of `len` bytes at `addr` covers.
    ///
    /// Access endpoints are always boundaries (they were inserted during
    /// [`Atoms::build`]), so the lookups cannot fail for accesses from
    /// the same trace.
    pub fn span(&self, addr: Addr, len: u64) -> std::ops::Range<usize> {
        let lo = self
            .bounds
            .binary_search(&addr.0)
            .expect("access start is a boundary");
        let hi = self
            .bounds
            .binary_search(&(addr.0 + len))
            .expect("access end is a boundary");
        lo..hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_trace::{AccessSize, TraceBuilder};

    #[test]
    fn overlapping_accesses_split_into_atoms() {
        let mut b = TraceBuilder::new();
        b.write(0u32, 0x100u64, AccessSize::U64)
            .read(0u32, 0x104u64, AccessSize::U32)
            .read(0u32, 0x200u64, AccessSize::U8);
        let atoms = Atoms::build(&b.build());
        // Boundaries: 0x100, 0x104, 0x108, 0x200, 0x201 → 4 atoms, one
        // of which (0x108..0x200) is an uncovered gap.
        assert_eq!(atoms.len(), 4);
        assert_eq!(atoms.interval(0), (0x100, 0x104));
        assert_eq!(atoms.interval(1), (0x104, 0x108));
        assert!(atoms.is_covered(0) && atoms.is_covered(1));
        assert!(!atoms.is_covered(2), "gap atom is uncovered");
        assert!(atoms.is_covered(3));
        assert_eq!(atoms.span(Addr(0x100), 8), 0..2);
        assert_eq!(atoms.span(Addr(0x104), 4), 1..2);
        assert_eq!(atoms.span(Addr(0x200), 1), 3..4);
    }

    #[test]
    fn empty_trace_has_no_atoms() {
        let atoms = Atoms::build(&Trace::new());
        assert_eq!(atoms.len(), 0);
    }
}
