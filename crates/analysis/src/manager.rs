//! The pass manager.
//!
//! `dgrace analyze` grew from one classification sweep into a pipeline
//! of independent passes, each contributing one artifact to the shared
//! [`AnalysisSummary`]: classification feeds the prune filter, affinity
//! pre-seeds the dynamic detector's group cells, the lock graph emits
//! potential-race/deadlock warnings, and the heat histogram compiles
//! into a shard routing plan. The manager owns ordering, binds the
//! summary to its trace with a content fingerprint, and times every
//! pass so the CLI can report where analysis budget goes.
//!
//! Passes communicate only through the summary they build: a pass may
//! read what earlier passes wrote (the lock-graph pass consumes the
//! classifier's `Contended` ranges) but never mutates another pass's
//! artifact. That keeps the set pluggable — dropping a pass degrades
//! the run (fewer prunes, no plan) without changing any other output.

use std::time::Instant;

use dgrace_trace::{trace_fingerprint, AnalysisSummary, Trace};

/// One ahead-of-time pass over a recorded trace.
///
/// A pass sweeps the trace (typically once, linearly) and writes its
/// artifact into the summary under construction. Passes run in the
/// order they were registered; the standard pipeline orders the
/// classifier first because later passes read its ranges.
pub trait AnalysisPass {
    /// Stable name used in stats and CLI output.
    fn name(&self) -> &'static str;

    /// Runs the pass, contributing to `summary`. Returns the number of
    /// items produced (ranges, warnings, buckets — the pass's natural
    /// unit), which the manager records in [`PassStats`].
    fn run(&mut self, trace: &Trace, summary: &mut AnalysisSummary) -> u64;
}

/// Per-pass execution statistics reported by [`PassManager::run`].
#[derive(Clone, Debug)]
pub struct PassStats {
    /// The pass's [`AnalysisPass::name`].
    pub name: &'static str,
    /// Items the pass produced.
    pub items: u64,
    /// Wall-clock nanoseconds spent in the pass.
    pub nanos: u128,
}

/// Runs a sequence of [`AnalysisPass`]es over one trace.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn AnalysisPass>>,
}

impl PassManager {
    /// An empty manager; add passes with [`PassManager::push`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard pipeline: classification, sharing affinity, lock
    /// graph, heat histogram — everything `dgrace analyze` emits.
    pub fn standard() -> Self {
        let mut m = Self::new();
        m.push(Box::new(crate::ClassifyPass));
        m.push(Box::new(crate::AffinityPass));
        m.push(Box::new(crate::LockGraphPass));
        m.push(Box::new(crate::HeatPass));
        m
    }

    /// Appends a pass to the pipeline.
    pub fn push(&mut self, pass: Box<dyn AnalysisPass>) {
        self.passes.push(pass);
    }

    /// Runs every pass in order and returns the finished summary plus
    /// per-pass stats. The summary is stamped with the trace's content
    /// fingerprint before any pass runs, so even an empty pipeline
    /// produces a summary bound to its trace.
    pub fn run(&mut self, trace: &Trace) -> (AnalysisSummary, Vec<PassStats>) {
        let mut summary = AnalysisSummary {
            fingerprint: trace_fingerprint(trace),
            trace_events: trace.len() as u64,
            ..Default::default()
        };
        let mut stats = Vec::with_capacity(self.passes.len());
        for pass in &mut self.passes {
            let t0 = Instant::now();
            let items = pass.run(trace, &mut summary);
            stats.push(PassStats {
                name: pass.name(),
                items,
                nanos: t0.elapsed().as_nanos(),
            });
        }
        (summary, stats)
    }
}
