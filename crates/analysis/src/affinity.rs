//! Sharing-affinity inference.
//!
//! The dynamic-granularity detector discovers neighboring same-size
//! writes at *runtime* by probing the shadow space for up to two epochs
//! per location (paper §III). That probing cost is paid on every run,
//! yet the access-pattern it discovers — arrays written element-wise
//! with one stride — is a static property of the program. This pass
//! recovers it from the trace: maximal **write runs** `[start, end)`
//! where every write landing in the interval starts at `start + k·g`
//! with size `g`. The detector uses the map to shrink its first-epoch
//! neighbor scan to the certified stride and to transfer second-epoch
//! cells into a neighbor group without allocating a split clock.
//!
//! The map is advisory: the detector re-validates every prediction
//! against live shadow state and falls back to the unseeded path on any
//! mismatch, so a wrong (even adversarial) map costs probes, never
//! correctness. The pass still aims for true certification — a run is
//! closed or truncated whenever a stray write starts inside it or an
//! earlier write overlaps into it — because only correct predictions
//! convert into skipped work.

use std::collections::BTreeMap;

use dgrace_trace::{Addr, AffinityMap, AffinityRange, AnalysisSummary, Trace};

use crate::manager::AnalysisPass;

/// Infers per-range write strides (see the module docs).
pub struct AffinityPass;

/// An open write run while sweeping keys in ascending order.
struct Run {
    start: u64,
    g: u8,
    /// Expected start of the next member (`start + members · g`).
    next: u64,
    members: u64,
}

/// Closes `run`, truncating its last granule when the breaking key
/// starts inside it, and folds the run's reach into `reach` so later
/// runs cannot start under a member's extent.
fn close(run: Run, breaker: Option<u64>, ranges: &mut Vec<AffinityRange>, reach: &mut u64) {
    let (end, members) = match breaker {
        // The breaker starts inside the last granule: that granule's
        // member write is no longer certified, drop it.
        Some(k) if k < run.next => (run.next - run.g as u64, run.members - 1),
        _ => (run.next, run.members),
    };
    *reach = (*reach).max(run.next);
    if members >= 2 {
        ranges.push(AffinityRange {
            start: Addr(run.start),
            len: end - run.start,
            stride: run.g,
        });
    }
}

impl AnalysisPass for AffinityPass {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn run(&mut self, trace: &Trace, summary: &mut AnalysisSummary) -> u64 {
        // Per write start address: the consistent access size, or `None`
        // once two writes of different sizes start there (poisoned), plus
        // the widest size seen for overlap tracking.
        let mut keys: BTreeMap<u64, (Option<u8>, u8)> = BTreeMap::new();
        for ev in trace {
            if let Some((addr, size, true)) = ev.access() {
                let g = size.bytes() as u8;
                keys.entry(addr.0)
                    .and_modify(|(s, widest)| {
                        if *s != Some(g) {
                            *s = None;
                        }
                        *widest = (*widest).max(g);
                    })
                    .or_insert((Some(g), g));
            }
        }

        let mut ranges = Vec::new();
        // Max end of any write outside the open run: a run may only
        // start past it, or an earlier write would overlap the range.
        let mut reach = 0u64;
        let mut run: Option<Run> = None;
        for (&k, &(stride, widest)) in &keys {
            if let Some(r) = run.take() {
                if stride == Some(r.g) && k == r.next {
                    run = Some(Run {
                        next: r.next + r.g as u64,
                        members: r.members + 1,
                        ..r
                    });
                    continue;
                }
                close(r, Some(k), &mut ranges, &mut reach);
            }
            match stride {
                Some(g) if k >= reach => {
                    run = Some(Run {
                        start: k,
                        g,
                        next: k + g as u64,
                        members: 1,
                    });
                }
                _ => reach = reach.max(k + widest as u64),
            }
        }
        if let Some(r) = run.take() {
            close(r, None, &mut ranges, &mut reach);
        }

        summary.affinity = AffinityMap { ranges };
        summary.affinity.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_trace::{AccessSize, TraceBuilder};

    fn affinity_of(trace: &Trace) -> AffinityMap {
        let mut s = AnalysisSummary::default();
        AffinityPass.run(trace, &mut s);
        s.affinity
    }

    #[test]
    fn strided_array_writes_form_one_run() {
        let mut b = TraceBuilder::new();
        for i in 0..8u64 {
            b.write(0u32, 0x1000 + i * 4, AccessSize::U32);
        }
        let m = affinity_of(&b.build());
        assert_eq!(
            m.ranges,
            vec![AffinityRange {
                start: Addr(0x1000),
                len: 32,
                stride: 4,
            }]
        );
        assert!(m.certified(Addr(0x1004), 4));
        assert!(!m.certified(Addr(0x1000), 4), "run head has no predecessor");
        assert!(!m.certified(Addr(0x1004), 8), "size must match stride");
    }

    #[test]
    fn conflicting_sizes_poison_the_key() {
        let mut b = TraceBuilder::new();
        b.write(0u32, 0x1000u64, AccessSize::U32)
            .write(0u32, 0x1004u64, AccessSize::U32)
            .write(0u32, 0x1004u64, AccessSize::U64); // conflicts
        let m = affinity_of(&b.build());
        assert!(m.is_empty());
    }

    #[test]
    fn stray_write_inside_last_granule_truncates_the_run() {
        let mut b = TraceBuilder::new();
        for i in 0..3u64 {
            b.write(0u32, 0x1000 + i * 4, AccessSize::U32);
        }
        b.write(0u32, 0x1009u64, AccessSize::U8); // inside [0x1008, 0x100c)
        let m = affinity_of(&b.build());
        assert_eq!(
            m.ranges,
            vec![AffinityRange {
                start: Addr(0x1000),
                len: 8,
                stride: 4,
            }]
        );
    }

    #[test]
    fn overlap_from_below_blocks_the_run() {
        let mut b = TraceBuilder::new();
        b.write(0u32, 0xffcu64, AccessSize::U64); // reaches into 0x1000..0x1004
        b.write(0u32, 0x1000u64, AccessSize::U32)
            .write(0u32, 0x1004u64, AccessSize::U32);
        let m = affinity_of(&b.build());
        assert!(m.is_empty(), "overlapped run must not be certified");
    }

    #[test]
    fn separate_arrays_form_separate_runs() {
        let mut b = TraceBuilder::new();
        for i in 0..2u64 {
            b.write(0u32, 0x1000 + i * 8, AccessSize::U64);
        }
        for i in 0..4u64 {
            b.write(1u32, 0x2000 + i * 2, AccessSize::U16);
        }
        let m = affinity_of(&b.build());
        assert_eq!(m.ranges.len(), 2);
        assert_eq!(m.ranges[0].stride, 8);
        assert_eq!(m.ranges[1].stride, 2);
    }

    #[test]
    fn reads_do_not_certify() {
        let mut b = TraceBuilder::new();
        for i in 0..4u64 {
            b.read(0u32, 0x1000 + i * 4, AccessSize::U32);
        }
        let m = affinity_of(&b.build());
        assert!(m.is_empty());
    }
}
