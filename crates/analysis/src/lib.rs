//! Ahead-of-time trace analysis for `dgrace`.
//!
//! Dynamic race detection pays its vector-clock cost at **every** shared
//! access, yet in real programs most locations are provably race-free
//! from the trace alone: thread-local buffers, tables written once
//! during single-threaded startup, counters always guarded by the same
//! mutex. This crate runs three linear passes over a recorded trace and
//! classifies every accessed byte range into one of the
//! [`LocationClass`]es, emitting a versioned [`AnalysisSummary`] that
//! the detectors' `StaticPruneFilter` and the runtime's warm-start mode
//! use to skip the pruned accesses entirely.
//!
//! The passes (see [`passes`] for the per-pass soundness arguments):
//!
//! 1. **Fork/join ownership** — accesses totally ordered by fork/join
//!    edges alone ⇒ [`LocationClass::ThreadLocal`];
//! 2. **Read-only epoch** — every write during a single-threaded phase
//!    ⇒ [`LocationClass::ReadOnlyAfterInit`];
//! 3. **Whole-trace lockset fixpoint** — a non-empty strict intersection
//!    of exclusively-held locks ⇒ [`LocationClass::ConsistentlyLocked`].
//!
//! Everything else is [`LocationClass::Contended`] and must be checked
//! dynamically. Classification is per *atom* (maximal intervals the
//! trace's accesses never split — see `atoms`), then adjacent atoms of
//! equal class merge into the summary's [`ClassifiedRange`]s.
//!
//! ```
//! use dgrace_analysis::analyze;
//! use dgrace_trace::{AccessSize, LocationClass, TraceBuilder, Addr};
//!
//! let mut b = TraceBuilder::new();
//! b.write(0u32, 0x100u64, AccessSize::U64) // before any fork: thread-local
//!     .fork(0u32, 1u32)
//!     .write(1u32, 0x200u64, AccessSize::U64) // only thread 1 touches it
//!     .join(0u32, 1u32);
//! let summary = analyze(&b.build());
//! assert_eq!(
//!     summary.class_at(Addr(0x100)),
//!     Some(&LocationClass::ThreadLocal)
//! );
//! assert_eq!(summary.stats.prunable_accesses(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod affinity;
mod atoms;
mod heat;
mod lockgraph;
mod manager;
mod passes;

use dgrace_trace::{AnalysisSummary, ClassifiedRange, LocationClass, SummaryStats, Trace};

pub use affinity::AffinityPass;
pub use heat::HeatPass;
pub use lockgraph::LockGraphPass;
pub use manager::{AnalysisPass, PassManager, PassStats};

use atoms::Atoms;

/// Ranks classes for attributing accesses that span atoms of different
/// classes: the access counts toward its weakest (least prunable) atom,
/// matching whether a byte-granularity detector could actually skip it.
fn rank(class: &LocationClass) -> u8 {
    match class {
        LocationClass::Contended => 0,
        LocationClass::ConsistentlyLocked { .. } => 1,
        LocationClass::ReadOnlyAfterInit => 2,
        LocationClass::ThreadLocal => 3,
    }
}

/// Runs the standard pass pipeline over `trace` and produces the full
/// analysis summary (classification, affinity, warnings, routing plan),
/// discarding per-pass stats. Use [`analyze_with_stats`] to keep them.
///
/// The trace should be structurally valid (see `dgrace_trace::validate`);
/// on malformed traces the result is still well-formed but its proofs
/// are meaningless.
pub fn analyze(trace: &Trace) -> AnalysisSummary {
    PassManager::standard().run(trace).0
}

/// Like [`analyze`], additionally returning per-pass item counts and
/// wall-clock timings.
pub fn analyze_with_stats(trace: &Trace) -> (AnalysisSummary, Vec<PassStats>) {
    PassManager::standard().run(trace)
}

/// The classification pass: the original three-proof sweep producing
/// [`ClassifiedRange`]s and [`SummaryStats`] (see the module docs).
/// Always runs first in the standard pipeline — [`LockGraphPass`] reads
/// its `Contended` ranges.
pub struct ClassifyPass;

impl AnalysisPass for ClassifyPass {
    fn name(&self) -> &'static str {
        "classify"
    }

    fn run(&mut self, trace: &Trace, summary: &mut AnalysisSummary) -> u64 {
        classify(trace, summary);
        summary.ranges.len() as u64
    }
}

fn classify(trace: &Trace, summary: &mut AnalysisSummary) {
    let atoms = Atoms::build(trace);
    let ordered = passes::fork_join_ordered(trace, &atoms);
    let read_only = passes::single_threaded_writes(trace, &atoms);
    let locksets = passes::common_locksets(trace, &atoms);

    // Combine: strongest proof wins; the order also fixes which class an
    // atom with several proofs reports under in the stats.
    let classes: Vec<Option<LocationClass>> = (0..atoms.len())
        .map(|i| {
            if !atoms.is_covered(i) {
                return None;
            }
            Some(if ordered[i] {
                LocationClass::ThreadLocal
            } else if read_only[i] {
                LocationClass::ReadOnlyAfterInit
            } else {
                match &locksets[i] {
                    Some(s) if !s.is_empty() => {
                        let mut lockset: Vec<_> = s.iter().copied().collect();
                        lockset.sort_by_key(|l| l.0);
                        LocationClass::ConsistentlyLocked { lockset }
                    }
                    _ => LocationClass::Contended,
                }
            })
        })
        .collect();

    // Thread-local verdicts do not compose across atoms: two adjacent
    // atoms can each be internally fork/join-ordered while their access
    // sets are mutually concurrent, and a word-granularity detector
    // folding both onto one shadow cell would report a race that pruning
    // the merged range (at granule > 1) would hide. So before merging,
    // re-run pass 1 over each maximal run of adjacent ThreadLocal atoms
    // as a single key: only *jointly* ordered runs may merge. The other
    // classes compose by construction — a read-only range's writes are
    // ordered against everything, and equal-lockset ranges share a lock
    // that orders every conflicting pair.
    let mut run_id: Vec<Option<usize>> = vec![None; atoms.len()];
    let mut nruns = 0usize;
    for i in 0..atoms.len() {
        if matches!(classes[i], Some(LocationClass::ThreadLocal)) {
            match (i > 0).then(|| run_id[i - 1]).flatten() {
                Some(prev) => run_id[i] = Some(prev),
                None => {
                    run_id[i] = Some(nruns);
                    nruns += 1;
                }
            }
        }
    }
    let run_ordered = passes::fork_join_ordered_keyed(trace, &atoms, nruns, |i| run_id[i]);

    let mut stats = SummaryStats::default();
    let mut ranges: Vec<ClassifiedRange> = Vec::new();
    for (i, class) in classes.iter().enumerate() {
        let Some(class) = class else { continue };
        let (start, end) = atoms.interval(i);
        counts_for(&mut stats, class).bytes += end - start;
        let may_merge = match run_id[i] {
            Some(r) => run_ordered[r],
            None => true,
        };
        match ranges.last_mut() {
            Some(r) if may_merge && r.end() == start && r.class == *class => r.len += end - start,
            _ => ranges.push(ClassifiedRange {
                start: dgrace_trace::Addr(start),
                len: end - start,
                class: class.clone(),
            }),
        }
    }

    // Attribute each access to its weakest atom's class.
    let mut trace_accesses = 0u64;
    for ev in trace {
        if let Some((addr, size, _)) = ev.access() {
            trace_accesses += 1;
            let weakest = atoms
                .span(addr, size.bytes())
                .filter_map(|i| classes[i].as_ref())
                .min_by_key(|c| rank(c))
                .expect("accessed atoms are covered");
            counts_for(&mut stats, weakest).accesses += 1;
        }
    }

    summary.trace_events = trace.len() as u64;
    summary.trace_accesses = trace_accesses;
    summary.ranges = ranges;
    summary.stats = stats;
}

fn counts_for<'a>(
    stats: &'a mut SummaryStats,
    class: &LocationClass,
) -> &'a mut dgrace_trace::ClassCounts {
    match class {
        LocationClass::ThreadLocal => &mut stats.thread_local,
        LocationClass::ReadOnlyAfterInit => &mut stats.read_only,
        LocationClass::ConsistentlyLocked { .. } => &mut stats.locked,
        LocationClass::Contended => &mut stats.contended,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_trace::{AccessSize, Addr, LockId, TraceBuilder};

    const X: u64 = 0x1000;
    const Y: u64 = 0x2000;

    #[test]
    fn empty_trace_empty_summary() {
        let s = analyze(&Trace::new());
        assert!(s.ranges.is_empty());
        assert_eq!(s.trace_events, 0);
        assert_eq!(s.stats.total_accesses(), 0);
    }

    #[test]
    fn single_thread_is_thread_local() {
        let mut b = TraceBuilder::new();
        b.write(0u32, X, AccessSize::U64)
            .read(0u32, X, AccessSize::U64);
        let s = analyze(&b.build());
        assert_eq!(s.class_at(Addr(X)), Some(&LocationClass::ThreadLocal));
        assert_eq!(s.stats.thread_local.accesses, 2);
        assert_eq!(s.stats.thread_local.bytes, 8);
    }

    #[test]
    fn fork_join_handoff_is_thread_local() {
        // Parent writes, forks child which writes, joins, writes again:
        // all ordered by fork/join edges (Eraser's classic false alarm).
        let mut b = TraceBuilder::new();
        b.write(0u32, X, AccessSize::U32)
            .fork(0u32, 1u32)
            .write(1u32, X, AccessSize::U32)
            .join(0u32, 1u32)
            .write(0u32, X, AccessSize::U32);
        let s = analyze(&b.build());
        assert_eq!(s.class_at(Addr(X)), Some(&LocationClass::ThreadLocal));
    }

    #[test]
    fn concurrent_unlocked_writes_are_contended() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U32)
            .write(1u32, X, AccessSize::U32)
            .join(0u32, 1u32);
        let s = analyze(&b.build());
        assert_eq!(s.class_at(Addr(X)), Some(&LocationClass::Contended));
        assert_eq!(s.stats.contended.accesses, 2);
        assert_eq!(s.stats.prunable_fraction(), 0.0);
    }

    #[test]
    fn init_then_shared_reads_is_read_only() {
        let mut b = TraceBuilder::new();
        b.write(0u32, X, AccessSize::U64) // single-threaded init
            .fork(0u32, 1u32)
            .fork(0u32, 2u32)
            .read(1u32, X, AccessSize::U64)
            .read(2u32, X, AccessSize::U64)
            .join(0u32, 1u32)
            .join(0u32, 2u32);
        let s = analyze(&b.build());
        // Concurrent reads are unordered, so not thread-local; but the
        // only write is single-threaded.
        assert_eq!(s.class_at(Addr(X)), Some(&LocationClass::ReadOnlyAfterInit));
        assert_eq!(s.stats.read_only.accesses, 3);
    }

    #[test]
    fn write_after_threads_exist_defeats_read_only() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U64)
            .read(1u32, X, AccessSize::U64)
            .join(0u32, 1u32);
        let s = analyze(&b.build());
        assert_eq!(s.class_at(Addr(X)), Some(&LocationClass::Contended));
    }

    #[test]
    fn consistent_locking_detected_with_lockset() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        for t in [0u32, 1u32] {
            b.locked(t, 7u32, |b| {
                b.read(t, X, AccessSize::U32).write(t, X, AccessSize::U32);
            });
        }
        b.join(0u32, 1u32);
        let s = analyze(&b.build());
        assert_eq!(
            s.class_at(Addr(X)),
            Some(&LocationClass::ConsistentlyLocked {
                lockset: vec![LockId(7)]
            })
        );
        assert_eq!(s.stats.locked.accesses, 4);
    }

    #[test]
    fn inconsistent_locks_are_contended() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .locked(0u32, 1u32, |t| {
                t.write(0u32, X, AccessSize::U32);
            })
            .locked(1u32, 2u32, |t| {
                t.write(1u32, X, AccessSize::U32);
            })
            .join(0u32, 1u32);
        let s = analyze(&b.build());
        assert_eq!(s.class_at(Addr(X)), Some(&LocationClass::Contended));
    }

    #[test]
    fn read_mode_rwlock_holds_do_not_count() {
        // Two threads writing under only a *read* hold stay contended:
        // read holders run concurrently.
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        for t in [0u32, 1u32] {
            b.acquire_read(t, 7u32)
                .write(t, X, AccessSize::U32)
                .release_read(t, 7u32);
        }
        b.join(0u32, 1u32);
        let s = analyze(&b.build());
        assert_eq!(s.class_at(Addr(X)), Some(&LocationClass::Contended));
    }

    #[test]
    fn mixed_classes_split_into_ranges() {
        let mut b = TraceBuilder::new();
        b.write(0u32, X, AccessSize::U64) // thread-local
            .fork(0u32, 1u32)
            .write(0u32, Y, AccessSize::U32) // contended
            .write(1u32, Y, AccessSize::U32)
            .join(0u32, 1u32);
        let s = analyze(&b.build());
        assert_eq!(s.ranges.len(), 2);
        assert!(s.class_at(Addr(X)).unwrap().is_prunable());
        assert!(!s.class_at(Addr(Y)).unwrap().is_prunable());
        assert_eq!(s.prunable_intervals(), vec![(X, X + 8)]);
    }

    #[test]
    fn partial_overlap_attributes_access_to_weakest_atom() {
        // A U64 write at X overlaps a contended U32 at X+4: the whole
        // U64 access counts as contended even though X..X+4 is private.
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U64)
            .write(1u32, X + 4, AccessSize::U32)
            .join(0u32, 1u32);
        let s = analyze(&b.build());
        assert_eq!(s.class_at(Addr(X)), Some(&LocationClass::ThreadLocal));
        assert_eq!(s.class_at(Addr(X + 4)), Some(&LocationClass::Contended));
        // The U64 write spans both atoms → counted contended; the U32
        // write is contended.
        assert_eq!(s.stats.contended.accesses, 2);
        assert_eq!(s.stats.thread_local.accesses, 0);
        assert_eq!(s.stats.thread_local.bytes, 4);
        assert_eq!(s.stats.contended.bytes, 4);
    }

    #[test]
    fn adjacent_same_class_atoms_merge() {
        let mut b = TraceBuilder::new();
        b.write(0u32, X, AccessSize::U32)
            .write(0u32, X + 4, AccessSize::U32);
        let s = analyze(&b.build());
        assert_eq!(s.ranges.len(), 1);
        assert_eq!(s.ranges[0].start, Addr(X));
        assert_eq!(s.ranges[0].len, 8);
    }

    #[test]
    fn standard_pipeline_fills_all_artifacts_and_stats() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        for i in 0..4u64 {
            b.write(0u32, X + i * 4, AccessSize::U32);
            b.write(1u32, X + i * 4, AccessSize::U32);
        }
        b.join(0u32, 1u32);
        let t = b.build();
        let (s, stats) = analyze_with_stats(&t);
        assert_eq!(s.fingerprint, dgrace_trace::trace_fingerprint(&t));
        assert_ne!(s.fingerprint, 0);
        assert!(!s.affinity.is_empty());
        assert!(!s.plan.is_empty());
        assert_eq!(
            stats.iter().map(|p| p.name).collect::<Vec<_>>(),
            vec!["classify", "affinity", "lock-graph", "heat"]
        );
        assert_eq!(s, analyze(&t), "analyze and analyze_with_stats agree");
    }

    #[test]
    fn summary_counts_match_trace() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U32)
            .write(1u32, X, AccessSize::U32)
            .read(1u32, Y, AccessSize::U8)
            .join(0u32, 1u32);
        let t = b.build();
        let s = analyze(&t);
        assert_eq!(s.trace_events, t.len() as u64);
        assert_eq!(s.trace_accesses, 3);
        assert_eq!(s.stats.total_accesses(), 3);
    }
}
