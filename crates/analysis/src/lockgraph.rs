//! Lock-graph warnings: potential races and deadlocks beyond the
//! observed schedule.
//!
//! The detectors report races the *observed* interleaving exhibits;
//! "Dynamic Data-Race Detection through the Fine-Grained Lens"
//! (PAPERS.md) motivates also surfacing hazards that merely *could*
//! manifest under another schedule. Two cheap static signals qualify:
//!
//! * **Lock-order cycles** — on every acquire, an edge is drawn from
//!   each exclusively-held lock to the acquired one; a strongly
//!   connected component with more than one lock means two threads can
//!   interleave their acquisitions into a deadlock, even if this run
//!   happened to get away with it.
//! * **Unlocked shared ranges** — a `Contended`-classified range that
//!   several threads touch, at least once with a write, and at least
//!   once while holding *no* exclusive lock. The range survived this
//!   schedule without an HB race, but nothing orders the conflicting
//!   pair in general.
//!
//! Both are **warnings**, not race reports: they carry no per-access
//! evidence and may be false positives (e.g. a cycle guarded by an
//! outer gate lock). Output is deterministic — cycles sorted by their
//! lock sets, ranges in address order — so CI can diff JSON reports.

use std::collections::{BTreeMap, BTreeSet};

use dgrace_baselines::HeldLocks;
use dgrace_trace::{AnalysisSummary, AnalysisWarning, Event, LocationClass, Trace};

use crate::manager::AnalysisPass;

/// Emits lock-order-cycle and unlocked-shared-range warnings.
pub struct LockGraphPass;

/// Strongly connected components of the lock-order graph, via Kosaraju
/// with iterative DFS. Deterministic: nodes are visited in ascending
/// lock id order and adjacency lists are sorted.
fn components(edges: &BTreeSet<(u32, u32)>) -> Vec<Vec<u32>> {
    let mut fwd: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut rev: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(a, b) in edges {
        fwd.entry(a).or_default().push(b);
        rev.entry(b).or_default().push(a);
        fwd.entry(b).or_default();
        rev.entry(a).or_default();
    }
    let nodes: Vec<u32> = fwd.keys().copied().collect();

    // Pass 1: forward DFS, recording finish order.
    let mut finished: Vec<u32> = Vec::with_capacity(nodes.len());
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for &root in &nodes {
        if seen.contains(&root) {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        seen.insert(root);
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            let succ = &fwd[&n];
            if *i < succ.len() {
                let next = succ[*i];
                *i += 1;
                if seen.insert(next) {
                    stack.push((next, 0));
                }
            } else {
                finished.push(n);
                stack.pop();
            }
        }
    }

    // Pass 2: reverse DFS in reverse finish order.
    let mut out: Vec<Vec<u32>> = Vec::new();
    let mut assigned: BTreeSet<u32> = BTreeSet::new();
    for &root in finished.iter().rev() {
        if assigned.contains(&root) {
            continue;
        }
        let mut comp = Vec::new();
        let mut stack = vec![root];
        assigned.insert(root);
        while let Some(n) = stack.pop() {
            comp.push(n);
            for &p in &rev[&n] {
                if assigned.insert(p) {
                    stack.push(p);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

impl AnalysisPass for LockGraphPass {
    fn name(&self) -> &'static str {
        "lock-graph"
    }

    fn run(&mut self, trace: &Trace, summary: &mut AnalysisSummary) -> u64 {
        // Contended ranges from the classifier, in address order. Each
        // keeps (first_tid, multi-threaded?, wrote?, unlocked access?).
        let contended: Vec<(u64, u64)> = summary
            .ranges
            .iter()
            .filter(|r| matches!(r.class, LocationClass::Contended))
            .map(|r| (r.start.0, r.end()))
            .collect();
        let mut state = vec![(None::<u32>, false, false, false); contended.len()];

        let mut held = HeldLocks::new();
        let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
        for ev in trace {
            if let Event::Acquire { tid, lock } = *ev {
                if let Some(prior) = held.exclusive(tid) {
                    for l in prior {
                        if l.0 != lock.0 {
                            edges.insert((l.0, lock.0));
                        }
                    }
                }
            }
            held.apply(ev);
            if let Some((addr, size, is_write)) = ev.access() {
                let tid = ev.tid();
                let unlocked = held.exclusive(tid).is_none_or(|s| s.is_empty());
                let end = addr.0 + size.bytes();
                // First contended range whose end exceeds the access
                // start; ranges are disjoint and sorted.
                let mut i = contended.partition_point(|&(_, e)| e <= addr.0);
                while i < contended.len() && contended[i].0 < end {
                    let s = &mut state[i];
                    match s.0 {
                        None => s.0 = Some(tid.0),
                        Some(t) if t != tid.0 => s.1 = true,
                        _ => {}
                    }
                    s.2 |= is_write;
                    s.3 |= unlocked;
                    i += 1;
                }
            }
        }

        let mut warnings: Vec<AnalysisWarning> = components(&edges)
            .into_iter()
            .filter(|c| c.len() > 1)
            .map(|c| AnalysisWarning::LockOrderCycle {
                locks: c.into_iter().map(dgrace_trace::LockId).collect(),
            })
            .collect();
        warnings.sort_by(|a, b| match (a, b) {
            (
                AnalysisWarning::LockOrderCycle { locks: la },
                AnalysisWarning::LockOrderCycle { locks: lb },
            ) => la.cmp(lb),
            _ => std::cmp::Ordering::Equal,
        });
        for (i, &(start, end)) in contended.iter().enumerate() {
            let (_, multi, wrote, unlocked) = state[i];
            if multi && wrote && unlocked {
                warnings.push(AnalysisWarning::UnlockedSharedRange {
                    start: dgrace_trace::Addr(start),
                    len: end - start,
                });
            }
        }

        summary.warnings = warnings;
        summary.warnings.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifyPass, PassManager};
    use dgrace_trace::{AccessSize, Addr, LockId, TraceBuilder};

    fn warnings_of(trace: &Trace) -> Vec<AnalysisWarning> {
        let mut m = PassManager::new();
        m.push(Box::new(ClassifyPass));
        m.push(Box::new(LockGraphPass));
        m.run(trace).0.warnings
    }

    #[test]
    fn ab_ba_inversion_is_one_cycle() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        b.locked(0u32, 1u32, |b| {
            b.locked(0u32, 2u32, |b| {
                b.write(0u32, 0x100u64, AccessSize::U32);
            });
        });
        b.locked(1u32, 2u32, |b| {
            b.locked(1u32, 1u32, |b| {
                b.write(1u32, 0x100u64, AccessSize::U32);
            });
        });
        b.join(0u32, 1u32);
        let w = warnings_of(&b.build());
        assert_eq!(
            w,
            vec![AnalysisWarning::LockOrderCycle {
                locks: vec![LockId(1), LockId(2)]
            }]
        );
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        for t in [0u32, 1u32] {
            b.locked(t, 1u32, |b| {
                b.locked(t, 2u32, |b| {
                    b.write(t, 0x100u64, AccessSize::U32);
                });
            });
        }
        b.join(0u32, 1u32);
        assert!(warnings_of(&b.build()).is_empty());
    }

    #[test]
    fn unlocked_shared_write_range_is_warned() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, 0x200u64, AccessSize::U64)
            .read(1u32, 0x200u64, AccessSize::U64)
            .join(0u32, 1u32);
        let w = warnings_of(&b.build());
        assert_eq!(
            w,
            vec![AnalysisWarning::UnlockedSharedRange {
                start: Addr(0x200),
                len: 8,
            }]
        );
    }

    #[test]
    fn locked_contended_range_is_not_warned() {
        // Inconsistent locks (contended class) but never lock-free: the
        // range is suspicious, yet no unlocked access exists to warn on.
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .locked(0u32, 1u32, |t| {
                t.write(0u32, 0x200u64, AccessSize::U32);
            })
            .locked(1u32, 2u32, |t| {
                t.write(1u32, 0x200u64, AccessSize::U32);
            })
            .join(0u32, 1u32);
        assert!(warnings_of(&b.build()).is_empty());
    }
}
