//! The three proof passes.
//!
//! Each pass sweeps the trace once and produces one verdict per atom.
//! All three over-approximate *racing*: a `false`/empty verdict never
//! suppresses a prune that would have been sound, and a positive verdict
//! comes with a happens-before argument (DESIGN.md §10) that every
//! conflicting access pair at the atom is ordered.

use std::collections::HashSet;

use dgrace_baselines::HeldLocks;
use dgrace_trace::{Event, LockId, Trace};
use dgrace_vc::{ClockValue, Tid, VectorClock};

use crate::atoms::Atoms;

/// Pass 1 — fork/join ownership.
///
/// Tracks per-thread vector clocks advanced by fork/join edges **only**
/// (locks, condvars and barriers are deliberately ignored: using fewer
/// HB edges can only make more access pairs look concurrent, so the
/// verdict under-approximates orderedness and stays sound). An atom is
/// thread-local when every consecutive access pair is ordered under this
/// relation — by transitivity the accesses are then totally ordered, and
/// no HB detector, which sees *at least* these edges, can report a race.
pub(crate) fn fork_join_ordered(trace: &Trace, atoms: &Atoms) -> Vec<bool> {
    fork_join_ordered_keyed(trace, atoms, atoms.len(), Some)
}

/// The generalized pass 1: verdicts are kept per *key* instead of per
/// atom, with `key(atom)` mapping each atom to its cell (or `None` to
/// leave the atom out). With the identity map this is exactly
/// [`fork_join_ordered`]; with atoms grouped into merge candidates it
/// decides *joint* orderedness — whether every access to any atom of the
/// group is ordered with every other. Joint verdicts are what make
/// merged ranges safe for coarse-granularity pruning: per-atom
/// orderedness does not compose (two atoms can each be internally
/// ordered while their accesses are mutually concurrent, which a word
/// detector folding both onto one shadow cell reports as a race).
pub(crate) fn fork_join_ordered_keyed(
    trace: &Trace,
    atoms: &Atoms,
    keys: usize,
    key: impl Fn(usize) -> Option<usize>,
) -> Vec<bool> {
    let nt = trace.thread_count();
    let mut clocks: Vec<VectorClock> = (0..nt)
        .map(|t| {
            let mut vc = VectorClock::new();
            vc.set(Tid(t as u32), 1);
            vc
        })
        .collect();
    let mut last: Vec<Option<(Tid, ClockValue)>> = vec![None; keys];
    let mut ordered = vec![true; keys];
    for ev in trace {
        match *ev {
            Event::Fork { parent, child } => {
                let pv = clocks[parent.index()].clone();
                clocks[child.index()].join(&pv);
                // The parent's later events must look concurrent with the
                // child's, so advance the parent past the snapshot.
                clocks[parent.index()].tick(parent);
            }
            Event::Join { parent, child } => {
                let cv = clocks[child.index()].clone();
                clocks[parent.index()].join(&cv);
            }
            _ => {
                if let Some((addr, size, _)) = ev.access() {
                    let t = ev.tid();
                    let vc = &clocks[t.index()];
                    let now = vc.get(t);
                    for i in atoms.span(addr, size.bytes()) {
                        let Some(k) = key(i) else { continue };
                        if let Some((lt, lc)) = last[k] {
                            if vc.get(lt) < lc {
                                ordered[k] = false;
                            }
                        }
                        last[k] = Some((t, now));
                    }
                }
            }
        }
    }
    ordered
}

/// Pass 2 — read-only after single-threaded initialization.
///
/// An atom qualifies when every **write** to it happens while exactly one
/// thread is live (forked and not yet joined). Such a write is ordered
/// against all other threads' accesses: threads forked later inherit the
/// writer's history through fork-edge chains, and threads already joined
/// drained theirs into a live thread through join-edge chains (at the
/// moment only one thread is live, every dead thread's join chain has
/// terminated in it). Reads are unconstrained — read/read pairs never
/// conflict. A thread forked but never joined keeps the live count high
/// forever, which only makes the verdict more conservative.
///
/// Liveness is tracked per thread, not as a bare counter: a duplicate
/// join of an already-dead thread must not decrement the count below the
/// number of threads actually running, or a still-live thread's racing
/// read would be hidden behind a bogus "single-threaded" window.
pub(crate) fn single_threaded_writes(trace: &Trace, atoms: &Atoms) -> Vec<bool> {
    let nt = trace.thread_count();
    let mut alive = vec![false; nt];
    if nt > 0 {
        alive[0] = true; // the main thread
    }
    let mut live: u64 = 1;
    let mut ok = vec![true; atoms.len()];
    for ev in trace {
        match *ev {
            Event::Fork { child, .. } => {
                if !alive[child.index()] {
                    alive[child.index()] = true;
                    live += 1;
                }
            }
            Event::Join { child, .. } => {
                if alive[child.index()] {
                    alive[child.index()] = false;
                    live -= 1;
                }
            }
            _ => {
                if let Some((addr, size, is_write)) = ev.access() {
                    if is_write && live > 1 {
                        for i in atoms.span(addr, size.bytes()) {
                            ok[i] = false;
                        }
                    }
                }
            }
        }
    }
    ok
}

/// Pass 3 — consistently locked.
///
/// Strict whole-trace lockset intersection: the verdict for an atom is
/// the set of locks held **exclusively** at *every* access to it. Unlike
/// Eraser's state machine (which forgives the single-threaded init phase
/// and is therefore only a heuristic), the strict intersection supports
/// a proof: a lock in every access's held-set induces release→acquire
/// HB edges between each conflicting pair. Read-mode rwlock holds do not
/// count — two read-holders run concurrently.
pub(crate) fn common_locksets(trace: &Trace, atoms: &Atoms) -> Vec<Option<HashSet<LockId>>> {
    let mut held = HeldLocks::new();
    let mut sets: Vec<Option<HashSet<LockId>>> = vec![None; atoms.len()];
    for ev in trace {
        held.apply(ev);
        if let Some((addr, size, _)) = ev.access() {
            let cur = held.exclusive(ev.tid());
            for i in atoms.span(addr, size.bytes()) {
                match &mut sets[i] {
                    None => sets[i] = Some(cur.cloned().unwrap_or_default()),
                    Some(s) => s.retain(|l| cur.is_some_and(|c| c.contains(l))),
                }
            }
        }
    }
    sets
}
