//! Access-heat histogram for shard routing plans.
//!
//! The runtime's `Router` hashes 4 KiB regions round-robin onto shards,
//! which balances *address space*, not *work*: one hot page can pin a
//! shard at 100% while the rest idle. This pass counts accesses per
//! 4 KiB page and emits the histogram as [`HeatBucket`]s; the consumer
//! calls `RoutingPlan::compile(shards)` to turn it into a balanced
//! least-loaded assignment the engines preload at warm start. Routing
//! placement never changes what a shard *computes* for the locations it
//! owns, only which shard owns them, so a stale or empty plan degrades
//! balance — never detection.

use std::collections::BTreeMap;

use dgrace_trace::{Addr, AnalysisSummary, HeatBucket, RoutingPlan, Trace};

use crate::manager::AnalysisPass;

/// Page granularity of the histogram; matches the router's region size.
const PAGE: u64 = 4096;

/// Builds the per-page access-heat histogram.
pub struct HeatPass;

impl AnalysisPass for HeatPass {
    fn name(&self) -> &'static str {
        "heat"
    }

    fn run(&mut self, trace: &Trace, summary: &mut AnalysisSummary) -> u64 {
        let mut pages: BTreeMap<u64, u64> = BTreeMap::new();
        for ev in trace {
            if let Some((addr, size, _)) = ev.access() {
                let first = addr.0 / PAGE;
                let last = (addr.0 + size.bytes() - 1) / PAGE;
                for p in first..=last {
                    *pages.entry(p).or_insert(0) += 1;
                }
            }
        }
        let buckets = pages
            .into_iter()
            .map(|(p, weight)| HeatBucket {
                start: Addr(p * PAGE),
                len: PAGE,
                weight,
            })
            .collect();
        summary.plan = RoutingPlan { buckets };
        summary.plan.buckets.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_trace::{AccessSize, TraceBuilder};

    #[test]
    fn pages_accumulate_access_counts() {
        let mut b = TraceBuilder::new();
        for _ in 0..3 {
            b.write(0u32, 0x1000u64, AccessSize::U32);
        }
        b.read(0u32, 0x2000u64, AccessSize::U8);
        // A straddling access counts on both pages.
        b.write(0u32, 0x2ffcu64, AccessSize::U64);
        let mut s = AnalysisSummary::default();
        HeatPass.run(&b.build(), &mut s);
        let w: Vec<(u64, u64)> = s
            .plan
            .buckets
            .iter()
            .map(|b| (b.start.0, b.weight))
            .collect();
        assert_eq!(w, vec![(0x1000, 3), (0x2000, 2), (0x3000, 1)]);
    }
}
