//! Tracked shared memory.
//!
//! Payloads live in relaxed atomics so that a *modeled* race (which the
//! detector reports) is never an *actual* Rust data race. The addresses
//! reported to the detector are virtual — allocated from the runtime's
//! tracked address space, padded so distinct objects never become
//! sharing neighbors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dgrace_trace::{AccessSize, Addr, Event};

use crate::runtime::{Inner, Runtime, ThreadHandle};

/// A tracked shared 64-bit cell.
#[derive(Clone)]
pub struct TrackedCell {
    addr: Addr,
    data: Arc<AtomicU64>,
}

impl TrackedCell {
    pub(crate) fn new(rt: &Runtime, value: u64) -> Self {
        TrackedCell {
            addr: Addr(rt.inner.alloc_addr(8)),
            data: Arc::new(AtomicU64::new(value)),
        }
    }

    /// The cell's tracked address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Reads the cell as thread `h` (lock-free buffered fast path).
    pub fn get(&self, h: &ThreadHandle) -> u64 {
        h.emit_access(Event::Read {
            tid: h.tid,
            addr: self.addr,
            size: AccessSize::U64,
        });
        self.data.load(Ordering::Relaxed)
    }

    /// Writes the cell as thread `h` (lock-free buffered fast path).
    pub fn set(&self, h: &ThreadHandle, value: u64) {
        h.emit_access(Event::Write {
            tid: h.tid,
            addr: self.addr,
            size: AccessSize::U64,
        });
        self.data.store(value, Ordering::Relaxed);
    }

    /// Read-modify-write (two tracked accesses, like `x += 1` compiles
    /// to).
    pub fn update(&self, h: &ThreadHandle, f: impl FnOnce(u64) -> u64) {
        let v = self.get(h);
        self.set(h, f(v));
    }
}

/// A tracked shared array of 64-bit words (contiguous tracked addresses —
/// the dynamic detector can share clocks across its elements).
#[derive(Clone)]
pub struct TrackedArray {
    inner: Arc<Inner>,
    base: Addr,
    data: Arc<Vec<AtomicU64>>,
}

impl TrackedArray {
    pub(crate) fn new(rt: &Runtime, len: usize) -> Self {
        let base = Addr(rt.inner.alloc_addr(len as u64 * 8));
        let data = (0..len).map(|_| AtomicU64::new(0)).collect();
        let arr = TrackedArray {
            inner: Arc::clone(&rt.inner),
            base,
            data: Arc::new(data),
        };
        arr.inner.emit_alloc(
            dgrace_trace::Tid::MAIN,
            Event::Alloc {
                tid: dgrace_trace::Tid::MAIN,
                addr: base,
                size: len as u64 * 8,
            },
        );
        arr
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The tracked address of element `i`.
    pub fn addr_of(&self, i: usize) -> Addr {
        Addr(self.base.0 + (i as u64) * 8)
    }

    /// Reads element `i` as thread `h` (lock-free buffered fast path).
    pub fn get(&self, h: &ThreadHandle, i: usize) -> u64 {
        h.emit_access(Event::Read {
            tid: h.tid,
            addr: self.addr_of(i),
            size: AccessSize::U64,
        });
        self.data[i].load(Ordering::Relaxed)
    }

    /// Writes element `i` as thread `h` (lock-free buffered fast path).
    pub fn set(&self, h: &ThreadHandle, i: usize, value: u64) {
        h.emit_access(Event::Write {
            tid: h.tid,
            addr: self.addr_of(i),
            size: AccessSize::U64,
        });
        self.data[i].store(value, Ordering::Relaxed);
    }

    /// Fills the whole array (the initialization pattern the `Init`
    /// state targets).
    pub fn fill(&self, h: &ThreadHandle, value: u64) {
        for i in 0..self.len() {
            self.set(h, i, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use dgrace_core::DynamicGranularity;
    use dgrace_detectors::FastTrack;
    use std::thread;

    #[test]
    fn cell_roundtrip_and_race_detection() {
        let rt = Runtime::new(FastTrack::new());
        let main = rt.main();
        let cell = rt.cell(7);
        assert_eq!(cell.get(&main), 7);
        let (child, ticket) = main.fork();
        let c2 = cell.clone();
        let jh = thread::spawn(move || c2.set(&child, 9));
        // Unsynchronized parent write, concurrent with the child's: the
        // pre-fork read is ordered (fork edge), this write is not.
        cell.set(&main, 5);
        jh.join().unwrap();
        main.join(ticket);
        let last = cell.get(&main); // ordered after join — not a race
        assert!(last == 9 || last == 5);
        let rep = rt.finish();
        assert_eq!(rep.races.len(), 1, "{:?}", rep.races);
    }

    #[test]
    fn locked_array_is_race_free_and_groups() {
        let rt = Runtime::new(DynamicGranularity::new());
        let main = rt.main();
        let arr = rt.array(64);
        arr.fill(&main, 0);
        let m = Arc::new(rt.mutex(()));
        let arr2 = arr.clone();
        let m2 = Arc::clone(&m);
        let (child, ticket) = main.fork();
        let jh = thread::spawn(move || {
            let _g = m2.lock(&child);
            for i in 0..64 {
                arr2.set(&child, i, 1);
            }
        });
        {
            let _g = m.lock(&main);
            for i in 0..64 {
                arr.set(&main, i, 2);
            }
        }
        jh.join().unwrap();
        main.join(ticket);
        let rep = rt.finish();
        assert!(rep.races.is_empty(), "{:?}", rep.races);
        // The 64-element array never needs 128 write clocks.
        assert!(rep.stats.peak_vc_count < 64);
    }

    #[test]
    fn update_is_two_accesses() {
        let rt = Runtime::new(FastTrack::new());
        let main = rt.main();
        let cell = rt.cell(1);
        cell.update(&main, |v| v * 10);
        assert_eq!(cell.get(&main), 10);
        let rep = rt.finish();
        assert_eq!(rep.stats.accesses, 3);
    }
}
