//! Deterministic fault injection for the engine's containment tests.
//!
//! Three kinds of faults are modeled, matching the failure domains the
//! runtime hardens against:
//!
//! * **Shard panics** — [`PanicOnEvent`] wraps a detector prototype so
//!   that one chosen shard panics on its Nth event, deterministically.
//!   The panic message always contains the marker
//!   [`INJECTED_PANIC_MARKER`], which [`silence_injected_panics`] uses to
//!   keep test output readable without hiding real panics.
//! * **Trace corruption** — [`corrupt_byte`] flips a chosen byte of an
//!   encoded trace, for driving the hardened decoders.
//! * **Budget pressure** — no helper needed: set a tight shadow budget
//!   via `Detector::set_shadow_budget`.
//!
//! Everything here is deterministic: the same fault specification against
//! the same trace produces the same quarantine point, so the differential
//! assertions in `tests/fault_injection.rs` are exact, not statistical.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Once};

use dgrace_detectors::{Detector, Report, ShardableDetector};
use dgrace_trace::Event;

/// Marker substring present in every injected panic message; the panic
/// hook installed by [`silence_injected_panics`] suppresses only panics
/// carrying it.
pub const INJECTED_PANIC_MARKER: &str = "fault-injection";

/// A detector wrapper that panics deterministically: the shard spawned
/// `target_shard`-th (in `new_shard` order, 0-based) panics when it
/// receives its `panic_at`-th event (1-based, counting every event fed to
/// that shard — accesses and sync broadcasts alike).
///
/// The prototype itself never panics; only spawned shards count events.
/// Shard indices are handed out from a counter shared across all shards
/// spawned from one prototype, so the mapping is reproducible: the
/// engine constructs shards in index order.
#[derive(Debug)]
pub struct PanicOnEvent<D> {
    inner: D,
    target_shard: usize,
    panic_at: u64,
    /// This instance's shard index; `usize::MAX` marks the prototype.
    index: usize,
    seen: u64,
    next_index: Arc<AtomicUsize>,
}

impl<D> PanicOnEvent<D> {
    /// Wraps `inner` so the `target_shard`-th spawned shard panics at its
    /// `panic_at`-th event. `panic_at == 0` never fires.
    pub fn new(inner: D, target_shard: usize, panic_at: u64) -> Self {
        PanicOnEvent {
            inner,
            target_shard,
            panic_at,
            index: usize::MAX,
            seen: 0,
            next_index: Arc::new(AtomicUsize::new(0)),
        }
    }
}

impl<D: Detector> Detector for PanicOnEvent<D> {
    fn name(&self) -> String {
        format!("{}+fault", self.inner.name())
    }

    fn on_event(&mut self, ev: &Event) {
        if self.index == self.target_shard {
            self.seen += 1;
            if self.seen == self.panic_at {
                panic!(
                    "{INJECTED_PANIC_MARKER}: shard {} panicked at its event {}",
                    self.index, self.seen
                );
            }
        }
        self.inner.on_event(ev);
    }

    fn finish(&mut self) -> Report {
        self.seen = 0;
        self.inner.finish()
    }

    fn set_shadow_budget(&mut self, bytes: Option<u64>) {
        self.inner.set_shadow_budget(bytes);
    }

    fn set_affinity(&mut self, map: Arc<dgrace_trace::AffinityMap>) {
        self.inner.set_affinity(map);
    }

    // Checkpointing passes through to the wrapped detector: the fault
    // specification is not part of the analysis state, so a snapshot
    // taken through the wrapper restores into any detector of the same
    // inner configuration (wrapped or not).
    fn snapshot(&self) -> Option<Vec<u8>> {
        self.inner.snapshot()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.inner.restore(bytes)
    }

    fn races_so_far(&self) -> &[dgrace_detectors::RaceReport] {
        self.inner.races_so_far()
    }
}

impl<D: ShardableDetector> ShardableDetector for PanicOnEvent<D> {
    fn new_shard(&self) -> Box<dyn Detector + Send> {
        let index = self.next_index.fetch_add(1, Ordering::Relaxed);
        Box::new(PanicOnEvent {
            inner: self.inner.new_shard(),
            target_shard: self.target_shard,
            panic_at: self.panic_at,
            index,
            seen: 0,
            next_index: Arc::clone(&self.next_index),
        })
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// "thread panicked" stderr noise for *injected* panics — those whose
/// message contains [`INJECTED_PANIC_MARKER`] — while delegating every
/// other panic to the previously installed hook. The engine catches the
/// injected panics anyway; this only keeps test logs honest.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if msg.is_some_and(|m| m.contains(INJECTED_PANIC_MARKER)) {
                return;
            }
            prev(info);
        }));
    });
}

/// Overwrites the byte at `offset` of an encoded trace with `value`,
/// returning the original byte. Panics if `offset` is out of range —
/// a fault specification pointing outside the trace is a test bug.
pub fn corrupt_byte(bytes: &mut [u8], offset: usize, value: u8) -> u8 {
    let old = bytes[offset];
    bytes[offset] = value;
    old
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::NopDetector;
    use dgrace_trace::{AccessSize, Addr, Tid};

    #[test]
    fn prototype_never_panics_and_shards_get_indices() {
        silence_injected_panics();
        let proto = PanicOnEvent::new(NopDetector::default(), 1, 1);
        let ev = Event::Write {
            tid: Tid(0),
            addr: Addr(0x100),
            size: AccessSize::U64,
        };
        // Prototype is index usize::MAX: feeding it is safe.
        let mut p = PanicOnEvent::new(NopDetector::default(), 0, 1);
        p.on_event(&ev);
        // Shard 0 is not the target; shard 1 is.
        let mut s0 = proto.new_shard();
        s0.on_event(&ev);
        let mut s1 = proto.new_shard();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s1.on_event(&ev)));
        assert!(err.is_err(), "target shard must panic at event 1");
    }

    #[test]
    fn corrupt_byte_roundtrips() {
        let mut buf = vec![1u8, 2, 3];
        assert_eq!(corrupt_byte(&mut buf, 1, 0xFF), 2);
        assert_eq!(buf, vec![1, 0xFF, 3]);
    }
}
