//! Parallel offline replay: ring-buffered per-shard ingestion lanes.
//!
//! [`crate::replay`]'s funnel path drives every shard from one thread
//! and broadcasts each sync event while holding *all* shard locks — on
//! multi-core hosts the shards serialize behind the dispatcher instead
//! of scaling. This module is the parallel rework:
//!
//! * **One SPSC ring per shard.** A producer thread walks the trace,
//!   routes accesses by address (the same [`Router`] the funnel uses),
//!   and appends `(stamp, event)` pairs to per-shard staging segments,
//!   pushed into bounded [`Spsc`] lanes in batches. Each shard worker
//!   owns its lane's consumer side and its shard's detector: the only
//!   cross-thread traffic on the hot path is the ring cursors.
//! * **Epoch-batched sync broadcast.** A sync event is *not* applied
//!   under all shard locks; it is stamped once and appended inline to
//!   every lane's segment. Each worker applies it to its own detector
//!   when its lane reaches that point — one flush per segment boundary,
//!   zero cross-shard locking, and every shard still observes the exact
//!   same happens-before sequence: its routed accesses interleaved with
//!   all sync events in trace order. That per-shard sequence is
//!   identical to what funnel dispatch feeds, so race sets are too.
//! * **Exactness preserved.** Checkpoint, resume, self-heal and
//!   quarantine reuse the engine machinery unchanged. A checkpoint
//!   barriers every lane (the producer waits until all workers drain to
//!   the boundary), captures the same [`EngineState`] the funnel path
//!   writes, and the two paths can resume each other's manifests. A
//!   healing shard delta-replays its own journal suffix, which on this
//!   path carries its sync copies inline — stamp order reconstructs the
//!   exact per-shard sequence.
//!
//! One deliberate divergence from the funnel path: accesses are routed
//! *immediately* as the producer walks the trace, not deferred to the
//! next sync boundary. An access that precedes its object's `Alloc`
//! within one inter-sync window may therefore land on a different shard
//! than funnel replay would choose. This can shift per-shard partition
//! statistics (peak bytes, per-shard counts) but never the race set —
//! the partitioned analysis is race-set-exact for *any* whole-range
//! routing, which is what the scaling-equivalence suite locks in.
//!
//! [`Router`]: crate::engine — see the engine module docs.
//! [`EngineState`]: crate::engine — see the engine module docs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use dgrace_detectors::{Report, ShardableDetector};
use dgrace_trace::{Event, PruneSet, Trace};

use dgrace_shadow::{process_gauge, MemComponent};

use crate::checkpoint::{CheckpointManifest, CHECKPOINT_FILE};
use crate::engine::{DetectorFactory, Engine, RuntimeOptions, SupervisorPolicy};
use crate::replay::{
    validate_resume, CheckpointInterval, CheckpointOptions, CkptHealth, ReplayError,
};
use crate::ring::Spsc;

/// Target events per ring segment. Large enough that ring and notify
/// overhead amortize to noise; small enough that lanes stay busy on
/// sync-light traces.
const SEGMENT_EVENTS: usize = 1024;

/// Ring capacity in segments per lane: bounds producer run-ahead (and
/// queued-segment memory) without stalling workers on short hiccups.
const RING_SEGMENTS: usize = 64;

/// One unit of work on a shard lane.
enum Job {
    /// A stamped segment of the shard's event stream.
    Run(Vec<(u64, Event)>),
    /// Checkpoint barrier: acknowledge once everything before this
    /// point has been fed to the detector.
    Barrier(mpsc::Sender<()>),
}

/// [`crate::replay_sharded`] on the parallel ring pipeline: replays
/// `trace` through `shards` instances of the prototype and returns the
/// merged report. Race sets are byte-identical to the funnel path.
pub fn replay_pipelined<D: ShardableDetector + ?Sized>(
    prototype: &D,
    trace: &Trace,
    shards: usize,
) -> Report {
    replay_pipelined_pruned(prototype, trace, shards, PruneSet::empty())
}

/// [`replay_pipelined`] with a warm-start prune predicate (the parallel
/// analog of [`crate::replay_sharded_pruned`]): the producer drops
/// pruned accesses before routing, surfacing them as `stats.pruned`.
pub fn replay_pipelined_pruned<D: ShardableDetector + ?Sized>(
    prototype: &D,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
) -> Report {
    replay_pipelined_planned(prototype, trace, shards, prune, &[])
}

/// [`replay_pipelined_pruned`] with an ahead-of-time shard routing plan
/// (the parallel analog of [`crate::replay_sharded_planned`]): plan
/// buckets are preloaded into the router before the producer starts, so
/// the hottest address ranges are balanced across lanes up front.
pub fn replay_pipelined_planned<D: ShardableDetector + ?Sized>(
    prototype: &D,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
    routes: &[(u64, u64, usize)],
) -> Report {
    let shards = shards.max(1);
    let opts = RuntimeOptions {
        shards,
        buffer_capacity: 1,
        record: false,
    };
    let detectors = (0..shards).map(|_| prototype.new_shard()).collect();
    let engine = Engine::with_prune(detectors, opts, prune);
    engine.preload_routes(routes);
    run_pipeline(&engine, trace, 0, "", None, None, &mut CkptHealth::new())
        .expect("unsupervised pipeline performs no checkpoint I/O");
    engine.finish()
}

/// [`replay_pipelined`] with a self-healing supervisor (the parallel
/// analog of [`crate::replay_supervised`]): a panicking shard detector
/// is respawned and rolled forward from its lane's journal.
pub fn replay_pipelined_supervised(
    prototype: Box<dyn ShardableDetector + Send>,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
    policy: SupervisorPolicy,
) -> Report {
    replay_pipelined_checkpointed(prototype, trace, shards, prune, Some(policy), None, None)
        .expect("supervised pipeline performs no checkpoint I/O")
}

/// The crash-resumable parallel replay (the ring-pipeline analog of
/// [`crate::replay_checkpointed`], behind `dgrace detect --pipeline`):
/// optionally supervised, optionally persisting a [`CheckpointManifest`]
/// at the configured cadence, optionally resuming one — including
/// manifests written by the *funnel* path, and vice versa: both paths
/// capture the same engine state at the same trace offsets.
pub fn replay_pipelined_checkpointed(
    prototype: Box<dyn ShardableDetector + Send>,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
    policy: Option<SupervisorPolicy>,
    ckpt: Option<&CheckpointOptions>,
    resume: Option<&CheckpointManifest>,
) -> Result<Report, ReplayError> {
    replay_pipelined_checkpointed_planned(
        prototype,
        trace,
        shards,
        prune,
        policy,
        ckpt,
        resume,
        &[],
        None,
    )
}

/// [`replay_pipelined_checkpointed`] with an ahead-of-time routing plan
/// (see [`crate::replay_checkpointed_planned`] for the resume
/// semantics: a restored checkpoint's captured ranges win) and a
/// cooperative `stop` flag (same contract as the funnel path: flush,
/// final checkpoint, partial report).
#[allow(clippy::too_many_arguments)]
pub fn replay_pipelined_checkpointed_planned(
    prototype: Box<dyn ShardableDetector + Send>,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
    policy: Option<SupervisorPolicy>,
    ckpt: Option<&CheckpointOptions>,
    resume: Option<&CheckpointManifest>,
    routes: &[(u64, u64, usize)],
    stop: Option<&AtomicBool>,
) -> Result<Report, ReplayError> {
    let shards = shards.max(1);
    let opts = RuntimeOptions {
        shards,
        buffer_capacity: 1,
        record: false,
    };
    let det_name = prototype.name();
    let detectors = (0..shards).map(|_| prototype.new_shard()).collect();
    let engine = match policy {
        Some(p) => {
            // The factory may be invoked concurrently from several shard
            // workers healing at once; the mutex serializes `new_shard`.
            let proto = parking_lot::Mutex::new(prototype);
            let factory: DetectorFactory = Arc::new(move |_| proto.lock().new_shard());
            Engine::with_supervisor(detectors, opts, prune, factory, p)
        }
        None => Engine::with_prune(detectors, opts, prune),
    };
    engine.preload_routes(routes);
    let trace_len = trace.len() as u64;
    let mut start = 0usize;
    if let Some(m) = resume {
        validate_resume(m, &det_name, shards, trace_len)?;
        engine.restore(&m.state).map_err(ReplayError::Corrupt)?;
        start = m.trace_offset as usize;
    }
    if let Some(c) = ckpt {
        std::fs::create_dir_all(&c.dir)
            .map_err(|e| ReplayError::Io(format!("{}: {e}", c.dir.display())))?;
    }
    let mut health = CkptHealth::new();
    run_pipeline(&engine, trace, start, &det_name, ckpt, stop, &mut health)?;
    let mut rep = engine.finish();
    rep.checkpointing_degraded |= health.degraded();
    Ok(rep)
}

/// Spawns one worker per shard lane, runs the producer on the calling
/// thread, and joins everything before returning. The rings are closed
/// on *every* exit path (including checkpoint I/O errors) so workers
/// always drain and terminate.
fn run_pipeline(
    engine: &Engine,
    trace: &Trace,
    start: usize,
    det_name: &str,
    ckpt: Option<&CheckpointOptions>,
    stop: Option<&AtomicBool>,
    health: &mut CkptHealth,
) -> Result<(), ReplayError> {
    let shards = engine.shard_count();
    let rings: Vec<Spsc<Job>> = (0..shards).map(|_| Spsc::new(RING_SEGMENTS)).collect();
    let mut result = Ok(());
    thread::scope(|scope| {
        for (i, ring) in rings.iter().enumerate() {
            scope.spawn(move || {
                while let Some(job) = ring.pop() {
                    match job {
                        Job::Run(seg) => {
                            engine.feed_segment(i, &seg);
                            // Retire this segment's bytes from the
                            // process gauge (the producer booked them
                            // at flush).
                            process_gauge().sub(MemComponent::RingLanes, segment_bytes(&seg));
                        }
                        Job::Barrier(ack) => {
                            let _ = ack.send(());
                        }
                    }
                }
            });
        }
        result = produce(engine, trace, start, det_name, ckpt, stop, &rings, health);
        for ring in &rings {
            ring.close();
        }
    });
    result
}

/// Heap bytes held by one in-flight ring segment, as booked against
/// [`MemComponent::RingLanes`] on the process gauge. Reporting only —
/// never an input to the deterministic pressure ladder.
fn segment_bytes(seg: &[(u64, Event)]) -> u64 {
    std::mem::size_of_val(seg) as u64
}

/// The producer loop: stamp, route, stage, flush, checkpoint.
#[allow(clippy::too_many_arguments)]
fn produce(
    engine: &Engine,
    trace: &Trace,
    start: usize,
    det_name: &str,
    ckpt: Option<&CheckpointOptions>,
    stop: Option<&AtomicBool>,
    rings: &[Spsc<Job>],
    health: &mut CkptHealth,
) -> Result<(), ReplayError> {
    let shards = rings.len();
    let trace_len = trace.len() as u64;
    let mut stage: Vec<Vec<(u64, Event)>> = vec![Vec::new(); shards];
    let mut targets: Vec<usize> = Vec::new();
    let mut since = 0u64;
    let mut last = Instant::now();
    for (idx, ev) in trace.iter().enumerate().skip(start) {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
            // Graceful interruption: quiesce every lane at this trace
            // boundary (the same cut a cadence checkpoint uses), persist
            // a final manifest at offset `idx`, and stop producing. The
            // caller's `finish()` then yields the partial report.
            for (lane, ring) in stage.iter_mut().zip(rings) {
                flush_lane(ring, lane);
            }
            quiesce(rings)?;
            if let Some(c) = ckpt {
                let manifest = CheckpointManifest {
                    detector: det_name.to_string(),
                    trace_len,
                    trace_offset: idx as u64,
                    state: engine.capture(),
                };
                let path = c.dir.join(CHECKPOINT_FILE);
                health.note(&path, manifest.save(&path));
            }
            return Ok(());
        }
        if ev.is_sync() {
            // Epoch-batched broadcast: one stamp, appended to every
            // lane's segment; workers apply it without cross-shard
            // coordination when their lane reaches this point.
            let stamp = engine.alloc_stamp();
            for (lane, ring) in stage.iter_mut().zip(rings) {
                lane.push((stamp, *ev));
                if lane.len() >= SEGMENT_EVENTS {
                    flush_lane(ring, lane);
                }
            }
            engine.note_emitted(1);
        } else if engine.prunes_event(ev) {
            engine.note_pruned(1);
        } else {
            if let Event::Alloc { addr, size, .. } = *ev {
                engine.register_range(addr.0, size);
            }
            let stamp = engine.alloc_stamp();
            engine.route_targets(ev, &mut targets);
            for &s in &targets {
                stage[s].push((stamp, *ev));
                if stage[s].len() >= SEGMENT_EVENTS {
                    flush_lane(&rings[s], &mut stage[s]);
                }
            }
            engine.note_emitted(1);
        }
        since += 1;
        if let Some(c) = ckpt {
            let due = match c.every {
                CheckpointInterval::Events(n) => since >= n.max(1),
                CheckpointInterval::Secs(s) => last.elapsed() >= Duration::from_secs(s),
            };
            if due {
                // Quiesce: every lane drains to this trace boundary, so
                // the capture covers exactly the events up to `idx` —
                // the same cut the funnel path checkpoints.
                for (lane, ring) in stage.iter_mut().zip(rings) {
                    flush_lane(ring, lane);
                }
                quiesce(rings)?;
                let manifest = CheckpointManifest {
                    detector: det_name.to_string(),
                    trace_len,
                    trace_offset: (idx + 1) as u64,
                    state: engine.capture(),
                };
                let path = c.dir.join(CHECKPOINT_FILE);
                health.note(&path, manifest.save(&path));
                since = 0;
                last = Instant::now();
            }
        }
    }
    for (lane, ring) in stage.iter_mut().zip(rings) {
        flush_lane(ring, lane);
    }
    Ok(())
}

/// Pushes a lane's staged segment into its ring (blocking while the
/// ring is full — backpressure against a slow shard).
fn flush_lane(ring: &Spsc<Job>, lane: &mut Vec<(u64, Event)>) {
    if lane.is_empty() {
        return;
    }
    let seg = std::mem::replace(lane, Vec::with_capacity(SEGMENT_EVENTS));
    // Book the in-flight segment against the process gauge; the worker
    // retires it after feeding the detector.
    process_gauge().add(MemComponent::RingLanes, segment_bytes(&seg));
    // The rings are only closed after the producer returns, so the push
    // cannot be rejected mid-run.
    if ring.push(Job::Run(seg)).is_err() {
        unreachable!("shard lane closed while the producer was running");
    }
}

/// Blocks until every lane has drained everything pushed before this
/// call: one barrier job per lane, one acknowledgement awaited per lane.
fn quiesce(rings: &[Spsc<Job>]) -> Result<(), ReplayError> {
    let (tx, rx) = mpsc::channel();
    for ring in rings {
        if ring.push(Job::Barrier(tx.clone())).is_err() {
            return Err(ReplayError::Io("shard lane closed mid-run".into()));
        }
    }
    drop(tx);
    for _ in rings {
        rx.recv()
            .map_err(|_| ReplayError::Io("shard worker exited mid-run".into()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay_sharded, replay_sharded_planned, replay_sharded_pruned};
    use dgrace_core::DynamicGranularity;
    use dgrace_detectors::{race_signature, FastTrack};
    use dgrace_trace::{AccessSize, TraceBuilder};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, 0x100u64, AccessSize::U64)
            .write(1u32, 0x100u64, AccessSize::U64)
            .locked(0u32, 0u32, |b| {
                b.write(0u32, 0x5000u64, AccessSize::U64);
            })
            .locked(1u32, 0u32, |b| {
                b.write(1u32, 0x5000u64, AccessSize::U64);
            })
            .join(0u32, 1u32);
        b.build()
    }

    #[test]
    fn pipelined_matches_funnel_fasttrack() {
        let trace = racy_trace();
        for shards in [1usize, 2, 4, 8] {
            let funnel = replay_sharded(&FastTrack::new(), &trace, shards);
            let piped = replay_pipelined(&FastTrack::new(), &trace, shards);
            assert_eq!(
                race_signature(&piped),
                race_signature(&funnel),
                "shards={shards}"
            );
            assert_eq!(piped.stats.events, funnel.stats.events, "shards={shards}");
            assert_eq!(
                piped.stats.accesses, funnel.stats.accesses,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn pipelined_matches_funnel_dynamic() {
        let trace = racy_trace();
        for shards in [1usize, 3, 4] {
            let funnel = replay_sharded(&DynamicGranularity::new(), &trace, shards);
            let piped = replay_pipelined(&DynamicGranularity::new(), &trace, shards);
            assert_eq!(
                race_signature(&piped),
                race_signature(&funnel),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn pipelined_prunes_like_funnel() {
        use dgrace_trace::{Addr, AnalysisSummary, ClassifiedRange, LocationClass};
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, 0x100u64, AccessSize::U64)
            .write(1u32, 0x100u64, AccessSize::U64);
        for i in 0..8u64 {
            b.write(0u32, 0x9000 + i * 8, AccessSize::U64);
        }
        b.join(0u32, 1u32);
        let trace = b.build();
        let summary = AnalysisSummary {
            ranges: vec![ClassifiedRange {
                start: Addr(0x9000),
                len: 64,
                class: LocationClass::ThreadLocal,
            }],
            ..Default::default()
        };
        let prune = summary.prune_set(1, 0);
        for shards in [1usize, 2, 4] {
            let funnel = replay_sharded_pruned(&FastTrack::new(), &trace, shards, prune.clone());
            let piped = replay_pipelined_pruned(&FastTrack::new(), &trace, shards, prune.clone());
            assert_eq!(piped.stats.pruned, funnel.stats.pruned, "shards={shards}");
            assert_eq!(piped.stats.events, funnel.stats.events, "shards={shards}");
            assert_eq!(
                race_signature(&piped),
                race_signature(&funnel),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn planned_routing_preserves_fasttrack_races_on_both_paths() {
        use dgrace_trace::{HeatBucket, RoutingPlan};
        let trace = racy_trace();
        // Heat buckets covering both hot addresses; compiling balances
        // them across shards, overriding the region-hash fallback.
        let plan = RoutingPlan {
            buckets: vec![
                HeatBucket {
                    start: dgrace_trace::Addr(0x0),
                    len: 0x1000,
                    weight: 10,
                },
                HeatBucket {
                    start: dgrace_trace::Addr(0x5000),
                    len: 0x1000,
                    weight: 9,
                },
            ],
        };
        let bare = replay_sharded(&FastTrack::new(), &trace, 1);
        for shards in [2usize, 4] {
            let routes = plan.compile(shards);
            assert!(!routes.is_empty(), "plan compiles for shards={shards}");
            let funnel = replay_sharded_planned(
                &FastTrack::new(),
                &trace,
                shards,
                PruneSet::empty(),
                &routes,
            );
            let piped = replay_pipelined_planned(
                &FastTrack::new(),
                &trace,
                shards,
                PruneSet::empty(),
                &routes,
            );
            assert_eq!(
                race_signature(&funnel),
                race_signature(&bare),
                "shards={shards}"
            );
            assert_eq!(
                race_signature(&piped),
                race_signature(&bare),
                "shards={shards}"
            );
            assert_eq!(funnel.stats.events, trace.len() as u64);
        }
    }
}
