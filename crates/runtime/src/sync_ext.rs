//! Tracked reader-writer locks, condition variables and barriers.

use std::sync::Arc;

use dgrace_trace::{Event, LockId};
use parking_lot::{Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::runtime::{Inner, Runtime, ThreadHandle};
use crate::TrackedMutexGuard;

/// A reader-writer lock whose operations are reported to the detector
/// (`pthread_rwlock_*` wrappers).
pub struct TrackedRwLock<T> {
    inner: Arc<Inner>,
    id: LockId,
    data: RwLock<T>,
}

impl<T> TrackedRwLock<T> {
    /// Creates a tracked rwlock owned by `rt`.
    pub fn new(rt: &Runtime, value: T) -> Self {
        TrackedRwLock {
            inner: Arc::clone(&rt.inner),
            id: rt.inner.alloc_lock(),
            data: RwLock::new(value),
        }
    }

    /// The lock's id in the event stream.
    pub fn id(&self) -> LockId {
        self.id
    }

    /// Acquires a shared (read) hold as thread `h`.
    pub fn read<'a>(&'a self, h: &ThreadHandle) -> TrackedReadGuard<'a, T> {
        let guard = self.data.read();
        self.inner.emit_sync(
            h.tid(),
            Event::AcquireRead {
                tid: h.tid(),
                lock: self.id,
            },
        );
        TrackedReadGuard {
            lock: self,
            tid: h.tid(),
            guard,
        }
    }

    /// Acquires an exclusive (write) hold as thread `h`.
    pub fn write<'a>(&'a self, h: &ThreadHandle) -> TrackedWriteGuard<'a, T> {
        let guard = self.data.write();
        self.inner.emit_sync(
            h.tid(),
            Event::Acquire {
                tid: h.tid(),
                lock: self.id,
            },
        );
        TrackedWriteGuard {
            lock: self,
            tid: h.tid(),
            guard,
        }
    }
}

/// Shared guard from [`TrackedRwLock::read`].
pub struct TrackedReadGuard<'a, T> {
    lock: &'a TrackedRwLock<T>,
    tid: dgrace_trace::Tid,
    guard: RwLockReadGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        // Emitted while the `guard` field is still held; it drops after
        // this body, so the release event precedes any later acquire.
        self.lock.inner.emit_sync(
            self.tid,
            Event::ReleaseRead {
                tid: self.tid,
                lock: self.lock.id,
            },
        );
    }
}

/// Exclusive guard from [`TrackedRwLock::write`].
pub struct TrackedWriteGuard<'a, T> {
    lock: &'a TrackedRwLock<T>,
    tid: dgrace_trace::Tid,
    guard: RwLockWriteGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        // Emitted while the `guard` field is still held; it drops after
        // this body, so the release event precedes any later acquire.
        self.lock.inner.emit_sync(
            self.tid,
            Event::Release {
                tid: self.tid,
                lock: self.lock.id,
            },
        );
    }
}

/// A condition variable whose signal/wait edges reach the detector.
pub struct TrackedCondvar {
    inner: Arc<Inner>,
    id: LockId,
    cv: Condvar,
}

impl TrackedCondvar {
    /// Creates a tracked condition variable owned by `rt`.
    pub fn new(rt: &Runtime) -> Self {
        TrackedCondvar {
            inner: Arc::clone(&rt.inner),
            id: rt.inner.alloc_lock(),
            cv: Condvar::new(),
        }
    }

    /// Signals one waiter (`pthread_cond_signal`).
    pub fn notify_one(&self, h: &ThreadHandle) {
        self.inner.emit_sync(
            h.tid(),
            Event::CvSignal {
                tid: h.tid(),
                cv: self.id,
            },
        );
        self.cv.notify_one();
    }

    /// Signals all waiters (`pthread_cond_broadcast`).
    pub fn notify_all(&self, h: &ThreadHandle) {
        self.inner.emit_sync(
            h.tid(),
            Event::CvSignal {
                tid: h.tid(),
                cv: self.id,
            },
        );
        self.cv.notify_all();
    }

    /// Waits on the condition as thread `h`, holding a tracked mutex
    /// guard. The release/re-acquire and the signal→wake edge all reach
    /// the detector in real order.
    pub fn wait<T>(&self, h: &ThreadHandle, guard: &mut TrackedMutexGuard<'_, T>) {
        guard.cv_wait(h, &self.cv, |tid| {
            self.inner
                .emit_sync(tid, Event::CvWait { tid, cv: self.id });
        });
    }
}

/// A barrier whose arrive/depart edges reach the detector.
pub struct TrackedBarrier {
    inner: Arc<Inner>,
    id: LockId,
    state: Mutex<(usize, usize)>, // (waiting, generation)
    cv: Condvar,
    parties: usize,
}

impl TrackedBarrier {
    /// Creates a barrier for `parties` threads, owned by `rt`.
    pub fn new(rt: &Runtime, parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        TrackedBarrier {
            inner: Arc::clone(&rt.inner),
            id: rt.inner.alloc_lock(),
            state: Mutex::new((0, 0)),
            cv: Condvar::new(),
            parties,
        }
    }

    /// Waits until all parties arrive (`pthread_barrier_wait`).
    pub fn wait(&self, h: &ThreadHandle) {
        let mut st = self.state.lock();
        // Arrival is published while holding the barrier's internal
        // mutex, so arrive events of one generation precede its departs.
        self.inner.emit_sync(
            h.tid(),
            Event::BarrierArrive {
                tid: h.tid(),
                bar: self.id,
            },
        );
        st.0 += 1;
        let gen = st.1;
        if st.0 == self.parties {
            st.0 = 0;
            st.1 += 1;
            self.inner.emit_sync(
                h.tid(),
                Event::BarrierDepart {
                    tid: h.tid(),
                    bar: self.id,
                },
            );
            drop(st);
            self.cv.notify_all();
        } else {
            while st.1 == gen {
                self.cv.wait(&mut st);
            }
            self.inner.emit_sync(
                h.tid(),
                Event::BarrierDepart {
                    tid: h.tid(),
                    bar: self.id,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_core::DynamicGranularity;
    use dgrace_detectors::FastTrack;
    use std::thread;

    #[test]
    fn rwlock_readers_share_writer_excludes() {
        let rt = Runtime::new(FastTrack::new());
        let main = rt.main();
        let lock = Arc::new(TrackedRwLock::new(&rt, ()));
        let data = rt.cell(7);

        // Writer fills under the write lock.
        {
            let _g = lock.write(&main);
            data.set(&main, 42);
        }
        // Two real reader threads read under read locks.
        let mut joins = Vec::new();
        let mut tickets = Vec::new();
        for _ in 0..2 {
            let (child, ticket) = main.fork();
            let lock = Arc::clone(&lock);
            let data = data.clone();
            tickets.push(ticket);
            joins.push(thread::spawn(move || {
                let _g = lock.read(&child);
                assert_eq!(data.get(&child), 42);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        for t in tickets {
            main.join(t);
        }
        let rep = rt.finish();
        assert!(rep.races.is_empty(), "{:?}", rep.races);
    }

    #[test]
    fn condvar_handoff_is_race_free() {
        let rt = Runtime::new(DynamicGranularity::new());
        let main = rt.main();
        let data = rt.array(16);
        let m = Arc::new(rt.mutex(false)); // "ready" flag
        let cv = Arc::new(TrackedCondvar::new(&rt));

        let (child, ticket) = main.fork();
        let (m2, cv2, d2) = (Arc::clone(&m), Arc::clone(&cv), data.clone());
        let consumer = thread::spawn(move || {
            let mut g = m2.lock(&child);
            while !*g {
                cv2.wait(&child, &mut g);
            }
            drop(g);
            let mut sum = 0;
            for i in 0..16 {
                sum += d2.get(&child, i);
            }
            sum
        });

        // Producer fills without the lock, then signals readiness.
        data.fill(&main, 3);
        {
            let mut g = m.lock(&main);
            *g = true;
            cv.notify_one(&main);
        }
        assert_eq!(consumer.join().unwrap(), 48);
        main.join(ticket);
        let rep = rt.finish();
        assert!(rep.races.is_empty(), "{:?}", rep.races);
    }

    #[test]
    fn barrier_separates_phases() {
        let rt = Runtime::new(DynamicGranularity::new());
        let main = rt.main();
        let data = rt.array(2);
        let bar = Arc::new(TrackedBarrier::new(&rt, 2));

        let (child, ticket) = main.fork();
        let (b2, d2) = (Arc::clone(&bar), data.clone());
        let worker = thread::spawn(move || {
            d2.set(&child, 1, 11); // phase 1: own slot
            b2.wait(&child);
            d2.get(&child, 0) // phase 2: the other slot
        });
        data.set(&main, 0, 22);
        bar.wait(&main);
        let mine = data.get(&main, 1);
        assert_eq!(worker.join().unwrap(), 22);
        assert_eq!(mine, 11);
        main.join(ticket);
        let rep = rt.finish();
        assert!(rep.races.is_empty(), "{:?}", rep.races);
    }
}
