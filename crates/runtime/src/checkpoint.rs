//! Persistent engine checkpoints: the `DGCP` container.
//!
//! A checkpoint is a [`CheckpointManifest`] — the engine's captured state
//! (per-shard detector snapshots, router, counters) plus enough trace
//! identity to validate a resume: the detector name, the trace length,
//! and the index of the next unprocessed event. Manifests are written
//! with [`dgrace_trace::write_file_atomic`], so a run killed mid-write
//! (even `kill -9`) leaves either the previous complete checkpoint or
//! none at all — never a torn file. A torn or truncated manifest (e.g. a
//! partial copy made outside the atomic writer) fails decoding with a
//! structured [`TraceError`] instead of resuming from garbage.
//!
//! Since format version 2 every manifest ends with a little-endian
//! CRC32 (IEEE) over all preceding bytes — atomic writes stop *torn*
//! files, the checksum stops *rotten* ones: a flipped bit anywhere in a
//! stored checkpoint surfaces as [`TraceError::ChecksumMismatch`]
//! instead of resuming from silently wrong state. Version-1 manifests
//! (no trailer) still load.
//!
//! Layout (all integers little-endian, strings/blobs length-prefixed):
//!
//! ```text
//! magic            : b"DGCP"
//! version          : u32   (currently 2)
//! detector         : str   (prototype name; must match at resume)
//! trace_len        : u64   (event count of the source trace)
//! trace_offset     : u64   (index of the first unprocessed event)
//! seq              : u64   (engine stamp counter)
//! emitted          : u64
//! pruned           : u64
//! router_next      : u64
//! router_ranges    : count, then (base u64, end u64, shard u64) each
//! shards           : count, then per shard:
//!   snapshot       : bool, then blob (a DGSS detector snapshot) if set
//!   failure        : bool, then shard u64, event_seq u64, payload str,
//!                    payload_type str, (bool, str) last_event if set
//!   dropped        : u64
//!   lost           : u64
//! crc32            : u32   (over everything above; v2+ only)
//! ```

use std::path::Path;

use dgrace_detectors::ShardFailure;
use dgrace_trace::{
    seal_crc, verify_crc, write_file_atomic, SnapshotLimits, SnapshotReader, SnapshotWriter,
    TraceError, CHECKPOINT_MAGIC, CHECKPOINT_MIN_VERSION, CHECKPOINT_VERSION,
};

use crate::engine::{EngineState, ShardCapture};

/// File name used for the manifest inside a `--checkpoint-dir`.
pub const CHECKPOINT_FILE: &str = "checkpoint.dgcp";

/// A persisted engine checkpoint: captured state plus resume identity.
pub struct CheckpointManifest {
    /// Name of the detector prototype the snapshot belongs to; a resume
    /// under a different detector configuration is rejected.
    pub detector: String,
    /// Event count of the trace the checkpointed run was processing.
    pub trace_len: u64,
    /// Index of the first trace event **not** covered by the checkpoint;
    /// a resumed run continues here.
    pub trace_offset: u64,
    pub(crate) state: EngineState,
}

impl CheckpointManifest {
    /// Number of detector shards the checkpoint captures; a resume must
    /// use the same shard count.
    pub fn shard_count(&self) -> usize {
        self.state.shards.len()
    }

    /// Encodes the manifest as a `DGCP` byte container.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(CHECKPOINT_MAGIC, CHECKPOINT_VERSION);
        w.str(&self.detector);
        w.u64(self.trace_len);
        w.u64(self.trace_offset);
        w.u64(self.state.seq);
        w.u64(self.state.emitted);
        w.u64(self.state.pruned);
        w.u64(self.state.router_next_shard as u64);
        w.count(self.state.router_ranges.len());
        for &(base, end, shard) in &self.state.router_ranges {
            w.u64(base);
            w.u64(end);
            w.u64(shard as u64);
        }
        w.count(self.state.shards.len());
        for cap in &self.state.shards {
            match &cap.snapshot {
                Some(bytes) => {
                    w.bool(true);
                    w.blob(bytes);
                }
                None => w.bool(false),
            }
            match &cap.failure {
                Some(f) => {
                    w.bool(true);
                    w.u64(f.shard as u64);
                    w.u64(f.event_seq);
                    w.str(&f.payload);
                    w.str(&f.payload_type);
                    match &f.last_event {
                        Some(ev) => {
                            w.bool(true);
                            w.str(ev);
                        }
                        None => w.bool(false),
                    }
                }
                None => w.bool(false),
            }
            w.u64(cap.dropped);
            w.u64(cap.lost);
        }
        let mut bytes = w.finish();
        seal_crc(&mut bytes);
        bytes
    }

    /// Decodes a `DGCP` container, rejecting torn, truncated, or
    /// malformed input with a structured error.
    pub fn decode(bytes: &[u8]) -> Result<Self, TraceError> {
        // Peek the header version to know whether a CRC trailer is
        // present, then re-open the reader over the verified payload.
        let header = SnapshotReader::new_ranged(
            bytes,
            CHECKPOINT_MAGIC,
            CHECKPOINT_MIN_VERSION..=CHECKPOINT_VERSION,
            SnapshotLimits::default(),
        )?;
        let payload = if header.version() >= 2 {
            verify_crc(bytes)?
        } else {
            bytes
        };
        let mut r = SnapshotReader::new_ranged(
            payload,
            CHECKPOINT_MAGIC,
            CHECKPOINT_MIN_VERSION..=CHECKPOINT_VERSION,
            SnapshotLimits::default(),
        )?;
        let detector = r.str()?;
        let trace_len = r.u64()?;
        let trace_offset = r.u64()?;
        let seq = r.u64()?;
        let emitted = r.u64()?;
        let pruned = r.u64()?;
        let router_next_shard = r.u64()? as usize;
        let n_ranges = r.count("router ranges")?;
        let mut router_ranges = Vec::with_capacity(n_ranges);
        for _ in 0..n_ranges {
            let base = r.u64()?;
            let end = r.u64()?;
            let shard = r.u64()? as usize;
            router_ranges.push((base, end, shard));
        }
        let n_shards = r.count("shards")?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let snapshot = if r.bool()? { Some(r.blob()?) } else { None };
            let failure = if r.bool()? {
                let shard = r.u64()? as usize;
                let event_seq = r.u64()?;
                let payload = r.str()?;
                let payload_type = r.str()?;
                let last_event = if r.bool()? { Some(r.str()?) } else { None };
                Some(ShardFailure {
                    shard,
                    event_seq,
                    payload,
                    payload_type,
                    last_event,
                })
            } else {
                None
            };
            let dropped = r.u64()?;
            let lost = r.u64()?;
            shards.push(ShardCapture {
                snapshot,
                failure,
                dropped,
                lost,
            });
        }
        r.expect_end()?;
        Ok(CheckpointManifest {
            detector,
            trace_len,
            trace_offset,
            state: EngineState {
                seq,
                emitted,
                pruned,
                router_next_shard,
                router_ranges,
                shards,
            },
        })
    }

    /// Writes the manifest to `path` atomically (temp file + fsync +
    /// rename), so a crash mid-write never leaves a torn manifest.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        write_file_atomic(path, &self.encode())
    }

    /// Loads a manifest from `path`. A missing file is `Ok(None)` — a
    /// fresh start, not an error; anything unreadable or undecodable is
    /// a diagnostic.
    pub fn load(path: &Path) -> Result<Option<Self>, String> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        CheckpointManifest::decode(&bytes)
            .map(Some)
            .map_err(|e| format!("{}: corrupt checkpoint: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointManifest {
        CheckpointManifest {
            detector: "fasttrack".into(),
            trace_len: 100,
            trace_offset: 42,
            state: EngineState {
                seq: 17,
                emitted: 40,
                pruned: 2,
                router_next_shard: 1,
                router_ranges: vec![(0x1000, 0x1200, 0), (0x2000, 0x2040, 1)],
                shards: vec![
                    ShardCapture {
                        snapshot: Some(vec![1, 2, 3]),
                        failure: None,
                        dropped: 0,
                        lost: 0,
                    },
                    ShardCapture {
                        snapshot: None,
                        failure: Some(ShardFailure {
                            shard: 1,
                            event_seq: 9,
                            payload: "boom".into(),
                            payload_type: "str".into(),
                            last_event: Some("write 0x1100 (4 bytes) by t2".into()),
                        }),
                        dropped: 3,
                        lost: 5,
                    },
                ],
            },
        }
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample();
        let bytes = m.encode();
        let back = CheckpointManifest::decode(&bytes).expect("decode");
        assert_eq!(back.detector, m.detector);
        assert_eq!(back.trace_len, m.trace_len);
        assert_eq!(back.trace_offset, m.trace_offset);
        assert_eq!(back.state.seq, m.state.seq);
        assert_eq!(back.state.router_ranges, m.state.router_ranges);
        assert_eq!(back.shard_count(), 2);
        assert_eq!(back.state.shards[0].snapshot, Some(vec![1, 2, 3]));
        assert_eq!(back.state.shards[1].failure, m.state.shards[1].failure);
        assert_eq!(back.state.shards[1].lost, 5);
        // Canonical: re-encoding reproduces the bytes.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn truncated_manifest_is_rejected_at_every_length() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                CheckpointManifest::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn bit_rot_anywhere_is_rejected() {
        let bytes = sample().encode();
        // Flip one bit at a spread of offsets across the container —
        // header, payload, and the CRC trailer itself.
        for i in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x04;
            assert!(
                CheckpointManifest::decode(&bad).is_err(),
                "flipped bit at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn version_1_manifests_without_crc_still_load() {
        // Re-frame the sample as a v1 container: same payload layout,
        // version 1 header, no CRC trailer.
        let v2 = sample().encode();
        let payload = dgrace_trace::verify_crc(&v2).unwrap();
        let mut v1 = payload.to_vec();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let back = CheckpointManifest::decode(&v1).expect("v1 decodes");
        assert_eq!(back.detector, "fasttrack");
        assert_eq!(back.trace_offset, 42);
        // Re-encoding upgrades to the current sealed format.
        assert_eq!(back.encode(), v2);
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        let path = std::env::temp_dir().join("dgrace-no-such-checkpoint.dgcp");
        let _ = std::fs::remove_file(&path);
        assert!(CheckpointManifest::load(&path)
            .expect("missing is ok")
            .is_none());
    }

    #[test]
    fn save_load_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("dgrace-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CHECKPOINT_FILE);
        let m = sample();
        m.save(&path).expect("save");
        let back = CheckpointManifest::load(&path)
            .expect("load")
            .expect("present");
        assert_eq!(back.encode(), m.encode());
        // A torn write (truncated file) must fail loudly, not resume
        // from garbage.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(CheckpointManifest::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
