//! Tracked synchronization primitives.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use dgrace_trace::{Event, LockId, Tid};
use parking_lot::{Mutex, MutexGuard};

use crate::runtime::{Inner, Runtime, ThreadHandle};

/// A mutex whose acquire/release operations are reported to the detector
/// (the `pthread_mutex_lock`/`unlock` wrappers of a PIN tool).
pub struct TrackedMutex<T> {
    inner: Arc<Inner>,
    id: LockId,
    data: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    pub(crate) fn new(rt: &Runtime, value: T) -> Self {
        TrackedMutex {
            inner: Arc::clone(&rt.inner),
            id: rt.inner.alloc_lock(),
            data: Mutex::new(value),
        }
    }

    /// The lock's id in the event stream.
    pub fn id(&self) -> LockId {
        self.id
    }

    /// Acquires the lock as thread `h`. The `Acquire` event is emitted
    /// *after* the physical acquisition, so the event stream never shows
    /// two holders.
    pub fn lock<'a>(&'a self, h: &ThreadHandle) -> TrackedMutexGuard<'a, T> {
        let guard = self.data.lock();
        self.inner.emit_sync(
            h.tid,
            Event::Acquire {
                tid: h.tid,
                lock: self.id,
            },
        );
        TrackedMutexGuard {
            mutex: self,
            tid: h.tid,
            guard,
        }
    }
}

/// Guard returned by [`TrackedMutex::lock`]; emits the `Release` event
/// (and then physically unlocks) on drop.
pub struct TrackedMutexGuard<'a, T> {
    mutex: &'a TrackedMutex<T>,
    tid: Tid,
    guard: MutexGuard<'a, T>,
}

impl<T> Deref for TrackedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for TrackedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> TrackedMutexGuard<'_, T> {
    /// Blocks on `cv` with this guard's lock, emitting the real event
    /// order: `Release` (before blocking), the caller's wait event after
    /// waking, then `Acquire` (the physical lock is already re-held, so
    /// the stream never shows two holders).
    pub(crate) fn cv_wait(
        &mut self,
        h: &ThreadHandle,
        cv: &parking_lot::Condvar,
        emit_wait: impl FnOnce(Tid),
    ) {
        debug_assert_eq!(h.tid, self.tid, "guard used from a foreign thread");
        self.mutex.inner.emit_sync(
            self.tid,
            Event::Release {
                tid: self.tid,
                lock: self.mutex.id,
            },
        );
        cv.wait(&mut self.guard);
        emit_wait(self.tid);
        self.mutex.inner.emit_sync(
            self.tid,
            Event::Acquire {
                tid: self.tid,
                lock: self.mutex.id,
            },
        );
    }
}

impl<T> Drop for TrackedMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Emit while still physically holding the lock (the `guard` field
        // drops after this body): the release event is ordered before any
        // subsequent acquire event.
        self.mutex.inner.emit_sync(
            self.tid,
            Event::Release {
                tid: self.tid,
                lock: self.mutex.id,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::NopDetector;
    use std::thread;

    #[test]
    fn guard_emits_paired_events() {
        let rt = Runtime::new(NopDetector::default());
        let main = rt.main();
        let m = rt.mutex(5u32);
        {
            let mut g = m.lock(&main);
            *g += 1;
            assert_eq!(*g, 6);
        }
        let rep = rt.finish();
        assert_eq!(rep.stats.events, 2); // acquire + release
    }

    #[test]
    fn contended_lock_stays_valid() {
        // Hammer a tracked mutex from 4 real threads; the resulting event
        // stream must be a structurally valid schedule.
        let rt = Runtime::new(dgrace_detectors::FastTrack::new());
        let main = rt.main();
        let m = Arc::new(rt.mutex(0u64));
        let mut handles = Vec::new();
        let mut tickets = Vec::new();
        for _ in 0..4 {
            let (child, ticket) = main.fork();
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..100 {
                    let mut g = m.lock(&child);
                    *g += 1;
                }
            }));
            tickets.push(ticket);
        }
        for jh in handles {
            jh.join().unwrap();
        }
        for t in tickets {
            main.join(t);
        }
        assert_eq!(*m.lock(&main), 400);
        let rep = rt.finish();
        assert!(rep.races.is_empty());
        // 4 forks + 4 joins + (400 + 1) * 2 lock ops
        assert_eq!(rep.stats.events, 8 + 802);
    }
}
