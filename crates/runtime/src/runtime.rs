//! The runtime core: thread handles, fork/join tracking, and the public
//! face of the sharded detection engine.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use dgrace_detectors::{Detector, Report, ShardableDetector};
use dgrace_trace::{Event, LockId, PruneSet, Tid};

use crate::engine::{Engine, RuntimeOptions, ThreadBuf};

pub(crate) struct Inner {
    pub(crate) engine: Engine,
    next_tid: AtomicU32,
    next_lock: AtomicU32,
    next_addr: AtomicU64,
}

impl Inner {
    fn new(engine: Engine) -> Self {
        Inner {
            engine,
            next_tid: AtomicU32::new(1), // 0 is the main thread
            next_lock: AtomicU32::new(0),
            next_addr: AtomicU64::new(0x1000),
        }
    }

    /// Emits a sync event as `tid`: the thread's buffer is flushed first,
    /// then the event is broadcast to every shard.
    pub(crate) fn emit_sync(&self, tid: Tid, ev: Event) {
        self.engine.emit_sync(tid, ev);
    }

    /// Emits an allocation event (flushes `tid`'s buffer, then dispatches
    /// to the object's shard).
    pub(crate) fn emit_alloc(&self, tid: Tid, ev: Event) {
        self.engine.emit_alloc(tid, ev);
    }

    pub(crate) fn alloc_lock(&self) -> LockId {
        LockId(self.next_lock.fetch_add(1, Ordering::Relaxed))
    }

    /// Reserves `len` bytes of *virtual* tracked address space, aligned
    /// to 8 and padded so that distinct objects are never sharing-
    /// adjacent by accident. The padded range is registered with the
    /// shard router, so a whole object — and therefore every pair of
    /// sharing-adjacent locations — always lands in one shard.
    pub(crate) fn alloc_addr(&self, len: u64) -> u64 {
        let len = (len + 7) & !7;
        let addr = self.next_addr.fetch_add(len + 256, Ordering::Relaxed);
        self.engine.register_range(addr, len + 256);
        addr
    }
}

/// A live detector fed by real threads.
///
/// Cloning is cheap (the state is shared); [`Runtime::finish`] extracts
/// the report once all tracked threads are joined.
#[derive(Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<Inner>,
}

impl Runtime {
    /// Wraps a detector for online use with a single shard and default
    /// batching — the drop-in replacement for the old serialized
    /// runtime.
    pub fn new<D: Detector + Send + 'static>(detector: D) -> Self {
        Self::with_options(detector, RuntimeOptions::default())
    }

    /// Wraps a detector for online use with explicit options. The shard
    /// count is forced to 1: an arbitrary detector cannot be replicated
    /// per shard — use [`Runtime::sharded`] for that.
    pub fn with_options<D: Detector + Send + 'static>(detector: D, opts: RuntimeOptions) -> Self {
        let opts = RuntimeOptions { shards: 1, ..opts };
        Runtime {
            inner: Arc::new(Inner::new(Engine::new(vec![Box::new(detector)], opts))),
        }
    }

    /// Creates a sharded runtime: `shards` instances of the prototype
    /// detector, each owning a slice of the tracked address space.
    pub fn sharded<D: ShardableDetector + ?Sized>(prototype: &D, shards: usize) -> Self {
        Self::sharded_with_options(
            prototype,
            RuntimeOptions {
                shards,
                ..RuntimeOptions::default()
            },
        )
    }

    /// Creates a sharded runtime with explicit options (shard count,
    /// buffer capacity, and journal recording).
    pub fn sharded_with_options<D: ShardableDetector + ?Sized>(
        prototype: &D,
        opts: RuntimeOptions,
    ) -> Self {
        Self::warm_started(prototype, opts, PruneSet::empty())
    }

    /// Creates a sharded runtime **warm-started** from an ahead-of-time
    /// analysis: accesses covered by `prune` (compiled from a previous
    /// run's `AnalysisSummary` for this detector's granularity) are
    /// dropped on the instrumented threads' fast path, before they ever
    /// occupy buffer space. The dropped count appears in the final
    /// report as `stats.pruned`. An empty prune set makes this identical
    /// to [`Runtime::sharded_with_options`].
    ///
    /// Note that a journaling runtime's recorded trace excludes pruned
    /// accesses — re-analyzing it would misclassify them as absent.
    pub fn warm_started<D: ShardableDetector + ?Sized>(
        prototype: &D,
        opts: RuntimeOptions,
        prune: PruneSet,
    ) -> Self {
        let shards = opts.shards.max(1);
        let opts = RuntimeOptions { shards, ..opts };
        let detectors = (0..shards).map(|_| prototype.new_shard()).collect();
        Runtime {
            inner: Arc::new(Inner::new(Engine::with_prune(detectors, opts, prune))),
        }
    }

    /// Creates a sharded runtime with a **self-healing supervisor**: a
    /// shard whose detector panics is respawned from the prototype,
    /// rolled forward through the engine's event journals (so no event
    /// is lost), and only permanently quarantined once `policy`'s
    /// respawn budget is exhausted. Supervision implies journaling, so
    /// this runtime records even when `opts.record` is false.
    pub fn supervised<D: ShardableDetector + Send + 'static>(
        prototype: D,
        opts: RuntimeOptions,
        policy: crate::SupervisorPolicy,
    ) -> Self {
        let shards = opts.shards.max(1);
        let opts = RuntimeOptions { shards, ..opts };
        let detectors = (0..shards).map(|_| prototype.new_shard()).collect();
        // The prototype need not be `Sync`; a mutex makes the respawn
        // factory shareable across the engine's threads.
        let proto = parking_lot::Mutex::new(prototype);
        let factory: crate::engine::DetectorFactory = Arc::new(move |_| proto.lock().new_shard());
        Runtime {
            inner: Arc::new(Inner::new(Engine::with_supervisor(
                detectors,
                opts,
                PruneSet::empty(),
                factory,
                policy,
            ))),
        }
    }

    /// Number of detector shards.
    pub fn shard_count(&self) -> usize {
        self.inner.engine.shard_count()
    }

    /// The main thread's handle (tid 0).
    pub fn main(&self) -> ThreadHandle {
        let buf = self.inner.engine.buffer_for(Tid::MAIN);
        ThreadHandle {
            inner: Arc::clone(&self.inner),
            tid: Tid::MAIN,
            buf,
        }
    }

    /// Creates a tracked mutex protecting `value`.
    pub fn mutex<T>(&self, value: T) -> crate::TrackedMutex<T> {
        crate::TrackedMutex::new(self, value)
    }

    /// Creates a tracked shared cell holding `value`.
    pub fn cell(&self, value: u64) -> crate::TrackedCell {
        crate::TrackedCell::new(self, value)
    }

    /// Creates a tracked shared array of `len` 64-bit words.
    pub fn array(&self, len: usize) -> crate::TrackedArray {
        crate::TrackedArray::new(self, len)
    }

    /// Stops detection and returns the report. Call after every tracked
    /// thread has been joined.
    ///
    /// Every per-thread buffer is flushed before the shard reports are
    /// extracted and merged, so `report.stats.events` is the *exact*
    /// number of events emitted — never a lower bound.
    pub fn finish(&self) -> Report {
        self.inner.engine.finish()
    }

    /// Stops detection like [`Runtime::finish`], but returns an error
    /// when *every* shard was quarantined by a detector panic — the one
    /// case where the report carries no race information at all. A
    /// partially degraded report (some shards healthy) is returned as
    /// `Ok`; inspect [`Report::is_degraded`](dgrace_detectors::Report)
    /// and `report.failures` for the damage.
    pub fn try_finish(&self) -> Result<Report, crate::EngineError> {
        let rep = self.inner.engine.finish();
        if !rep.failures.is_empty() && rep.failures.len() == self.shard_count() {
            return Err(crate::EngineError::AllShardsFailed(rep.failures));
        }
        Ok(rep)
    }

    /// Takes the trace captured so far.
    ///
    /// Works in two modes: a journaling runtime (built with
    /// [`RuntimeOptions::record`]) reconstructs the observed global
    /// serialization from the per-shard journals; a single-shard runtime
    /// whose detector is a [`dgrace_detectors::Recorder`] (or a
    /// [`dgrace_detectors::Tee`] whose first side is) drains the
    /// recorder. Returns `None` otherwise. All thread buffers are
    /// flushed first.
    pub fn take_recorded(&self) -> Option<dgrace_trace::Trace> {
        self.inner.engine.take_recorded()
    }

    /// Like [`Runtime::take_recorded`], but explains a `None`: the
    /// engine was not journaling (and its single shard was not a
    /// `Recorder`), or the recording shard was quarantined.
    pub fn try_take_recorded(&self) -> Result<dgrace_trace::Trace, crate::EngineError> {
        self.inner
            .engine
            .take_recorded()
            .ok_or(crate::EngineError::NotRecording)
    }
}

/// The identity of one tracked thread; every tracked operation takes a
/// `&ThreadHandle` to attribute the event (PIN's `tid` argument).
///
/// The handle owns the thread's private event buffer: accesses are
/// appended lock-free and only reach the detector shards in batches.
/// Dropping the handle flushes the buffer.
pub struct ThreadHandle {
    pub(crate) inner: Arc<Inner>,
    pub(crate) tid: Tid,
    buf: Arc<ThreadBuf>,
}

/// Proof that a child was forked; consumed by [`ThreadHandle::join`]
/// after the real thread has been joined.
#[must_use = "join() the child with this ticket"]
pub struct JoinTicket {
    child: Tid,
}

impl ThreadHandle {
    /// This thread's id.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Appends a memory-access event to this thread's private buffer —
    /// the lock-free fast path. The buffer is flushed on overflow and at
    /// every sync operation this thread performs.
    pub(crate) fn emit_access(&self, ev: Event) {
        self.inner.engine.push(&self.buf, ev);
    }

    /// Forks a tracked child thread: emits the `Fork` event and returns
    /// the child's handle (move it into the new thread) plus the ticket
    /// the parent uses to record the join.
    pub fn fork(&self) -> (ThreadHandle, JoinTicket) {
        let child = Tid(self.inner.next_tid.fetch_add(1, Ordering::Relaxed));
        self.inner.emit_sync(
            self.tid,
            Event::Fork {
                parent: self.tid,
                child,
            },
        );
        let buf = self.inner.engine.buffer_for(child);
        (
            ThreadHandle {
                inner: Arc::clone(&self.inner),
                tid: child,
                buf,
            },
            JoinTicket { child },
        )
    }

    /// Records that the child thread has been joined. Call *after* the
    /// real `std::thread::JoinHandle::join` returns, so the event order
    /// reflects the real schedule.
    ///
    /// The child's buffer is drained *before* the `Join` event is
    /// broadcast (the real thread has terminated, so the parent may
    /// drain it): the child's tail accesses must not appear ordered
    /// after the join edge.
    pub fn join(&self, ticket: JoinTicket) {
        self.inner.engine.flush_tid(ticket.child);
        self.inner.emit_sync(
            self.tid,
            Event::Join {
                parent: self.tid,
                child: ticket.child,
            },
        );
    }
}

impl Drop for ThreadHandle {
    fn drop(&mut self) {
        // Backstop flush: a child handle is dropped when the real thread
        // terminates, publishing its tail accesses before the join.
        self.inner.engine.flush_buf(&self.buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::NopDetector;
    use std::thread;

    #[test]
    fn fork_join_produce_events() {
        let rt = Runtime::new(NopDetector::default());
        let main = rt.main();
        let (child, ticket) = main.fork();
        let jh = thread::spawn(move || child.tid().index());
        let idx = jh.join().unwrap();
        main.join(ticket);
        assert_eq!(idx, 1);
        let rep = rt.finish();
        assert_eq!(rep.stats.events, 2); // fork + join
    }

    #[test]
    fn tids_are_unique() {
        let rt = Runtime::new(NopDetector::default());
        let main = rt.main();
        let (c1, t1) = main.fork();
        let (c2, t2) = main.fork();
        assert_ne!(c1.tid(), c2.tid());
        main.join(t1);
        main.join(t2);
    }

    #[test]
    fn address_allocation_pads() {
        let rt = Runtime::new(NopDetector::default());
        let a = rt.inner.alloc_addr(8);
        let b = rt.inner.alloc_addr(8);
        assert!(b >= a + 8 + 256, "objects must not be sharing-adjacent");
    }

    #[test]
    fn sharded_runtime_counts_exactly() {
        let rt = Runtime::sharded(&NopDetector::default(), 4);
        assert_eq!(rt.shard_count(), 4);
        let main = rt.main();
        let cells: Vec<_> = (0..8).map(|i| rt.cell(i)).collect();
        for (i, c) in cells.iter().enumerate() {
            c.set(&main, i as u64 * 3);
        }
        let (child, ticket) = main.fork();
        let cs: Vec<_> = cells.iter().map(Clone::clone).collect();
        let jh = thread::spawn(move || {
            let mut sum = 0;
            for c in &cs {
                sum += c.get(&child);
            }
            sum
        });
        let sum = jh.join().unwrap();
        main.join(ticket);
        assert_eq!(sum, (0..8u64).map(|i| i * 3).sum::<u64>());
        let rep = rt.finish();
        // 8 writes + 8 reads + fork + join, each counted exactly once.
        assert_eq!(rep.stats.events, 18);
        assert_eq!(rep.stats.accesses, 16);
    }
}
