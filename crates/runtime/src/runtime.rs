//! The runtime core: event funnel, thread handles, fork/join tracking.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use dgrace_detectors::{Detector, Report};
use dgrace_trace::{Event, LockId, Tid};
use parking_lot::Mutex;

pub(crate) struct Inner {
    detector: Mutex<Box<dyn Detector + Send>>,
    next_tid: AtomicU32,
    next_lock: AtomicU32,
    next_addr: AtomicU64,
}

impl Inner {
    pub(crate) fn emit(&self, ev: Event) {
        self.detector.lock().on_event(&ev);
    }

    pub(crate) fn alloc_lock(&self) -> LockId {
        LockId(self.next_lock.fetch_add(1, Ordering::Relaxed))
    }

    /// Reserves `len` bytes of *virtual* tracked address space, aligned
    /// to 8 and padded so that distinct objects are never sharing-
    /// adjacent by accident.
    pub(crate) fn alloc_addr(&self, len: u64) -> u64 {
        let len = (len + 7) & !7;
        self.next_addr.fetch_add(len + 256, Ordering::Relaxed)
    }
}

/// A live detector fed by real threads.
///
/// Cloning is cheap (the state is shared); [`Runtime::finish`] extracts
/// the report once all tracked threads are joined.
#[derive(Clone)]
pub struct Runtime {
    pub(crate) inner: Arc<Inner>,
}

impl Runtime {
    /// Wraps a detector for online use.
    pub fn new<D: Detector + Send + 'static>(detector: D) -> Self {
        Runtime {
            inner: Arc::new(Inner {
                detector: Mutex::new(Box::new(detector)),
                next_tid: AtomicU32::new(1), // 0 is the main thread
                next_lock: AtomicU32::new(0),
                next_addr: AtomicU64::new(0x1000),
            }),
        }
    }

    /// The main thread's handle (tid 0).
    pub fn main(&self) -> ThreadHandle {
        ThreadHandle {
            inner: Arc::clone(&self.inner),
            tid: Tid::MAIN,
        }
    }

    /// Creates a tracked mutex protecting `value`.
    pub fn mutex<T>(&self, value: T) -> crate::TrackedMutex<T> {
        crate::TrackedMutex::new(self, value)
    }

    /// Creates a tracked shared cell holding `value`.
    pub fn cell(&self, value: u64) -> crate::TrackedCell {
        crate::TrackedCell::new(self, value)
    }

    /// Creates a tracked shared array of `len` 64-bit words.
    pub fn array(&self, len: usize) -> crate::TrackedArray {
        crate::TrackedArray::new(self, len)
    }

    /// Stops detection and returns the report. Call after every tracked
    /// thread has been joined.
    pub fn finish(&self) -> Report {
        self.inner.detector.lock().finish()
    }

    /// If the runtime's detector is a [`dgrace_detectors::Recorder`]
    /// (or a [`dgrace_detectors::Tee`] whose first side is), takes the
    /// trace captured so far. Returns `None` for other detectors.
    pub fn take_recorded(&self) -> Option<dgrace_trace::Trace> {
        use dgrace_detectors::{Recorder, Tee};
        let mut det = self.inner.detector.lock();
        let any: &mut dyn std::any::Any = &mut **det;
        if let Some(rec) = any.downcast_mut::<Recorder>() {
            return Some(rec.take_trace());
        }
        // Common compositions: Recorder teed with a live detector.
        macro_rules! try_tee {
            ($($live:ty),*) => {$(
                if let Some(tee) = (&mut **det as &mut dyn std::any::Any)
                    .downcast_mut::<Tee<Recorder, $live>>()
                {
                    return Some(tee.first_mut().take_trace());
                }
            )*};
        }
        try_tee!(
            dgrace_core::DynamicGranularity,
            dgrace_detectors::FastTrack,
            dgrace_detectors::Djit
        );
        None
    }
}

/// The identity of one tracked thread; every tracked operation takes a
/// `&ThreadHandle` to attribute the event (PIN's `tid` argument).
pub struct ThreadHandle {
    pub(crate) inner: Arc<Inner>,
    pub(crate) tid: Tid,
}

/// Proof that a child was forked; consumed by [`ThreadHandle::join`]
/// after the real thread has been joined.
#[must_use = "join() the child with this ticket"]
pub struct JoinTicket {
    child: Tid,
}

impl ThreadHandle {
    /// This thread's id.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Forks a tracked child thread: emits the `Fork` event and returns
    /// the child's handle (move it into the new thread) plus the ticket
    /// the parent uses to record the join.
    pub fn fork(&self) -> (ThreadHandle, JoinTicket) {
        let child = Tid(self.inner.next_tid.fetch_add(1, Ordering::Relaxed));
        self.inner.emit(Event::Fork {
            parent: self.tid,
            child,
        });
        (
            ThreadHandle {
                inner: Arc::clone(&self.inner),
                tid: child,
            },
            JoinTicket { child },
        )
    }

    /// Records that the child thread has been joined. Call *after* the
    /// real `std::thread::JoinHandle::join` returns, so the event order
    /// reflects the real schedule.
    pub fn join(&self, ticket: JoinTicket) {
        self.inner.emit(Event::Join {
            parent: self.tid,
            child: ticket.child,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::NopDetector;
    use std::thread;

    #[test]
    fn fork_join_produce_events() {
        let rt = Runtime::new(NopDetector::default());
        let main = rt.main();
        let (child, ticket) = main.fork();
        let jh = thread::spawn(move || child.tid().index());
        let idx = jh.join().unwrap();
        main.join(ticket);
        assert_eq!(idx, 1);
        let rep = rt.finish();
        assert_eq!(rep.stats.events, 2); // fork + join
    }

    #[test]
    fn tids_are_unique() {
        let rt = Runtime::new(NopDetector::default());
        let main = rt.main();
        let (c1, t1) = main.fork();
        let (c2, t2) = main.fork();
        assert_ne!(c1.tid(), c2.tid());
        main.join(t1);
        main.join(t2);
    }

    #[test]
    fn address_allocation_pads() {
        let rt = Runtime::new(NopDetector::default());
        let a = rt.inner.alloc_addr(8);
        let b = rt.inner.alloc_addr(8);
        assert!(b >= a + 8 + 256, "objects must not be sharing-adjacent");
    }
}
