//! Online instrumentation runtime: run *real* Rust threads under a live
//! `dgrace` detector.
//!
//! The paper instruments binaries with Intel PIN; this crate is the
//! library-based analog (the second half of the DESIGN.md substitution):
//! tracked synchronization and memory types emit exactly the events a PIN
//! tool would — into a **sharded, batched detection engine**: each thread
//! appends its accesses to a private lock-free buffer (flushed on
//! overflow and at every sync operation), accesses are routed by address
//! to one of N detector shards, and sync events are sequence-stamped and
//! broadcast to all shards so cross-shard happens-before stays exact.
//! The analysis still observes a *real* interleaving of the running
//! threads, but no longer serializes them through a global lock.
//!
//! ```
//! use dgrace_runtime::Runtime;
//! use dgrace_core::DynamicGranularity;
//! use std::thread;
//!
//! let rt = Runtime::new(DynamicGranularity::new());
//! let counter = rt.cell(0u64);          // tracked shared memory
//! let main = rt.main();
//!
//! let (child, ticket) = main.fork();
//! let c2 = counter.clone();
//! let jh = thread::spawn(move || {
//!     c2.set(&child, 1);                // unsynchronized write...
//! });
//! counter.set(&main, 2);                // ...racing with this one
//! jh.join().unwrap();
//! main.join(ticket);
//!
//! let report = rt.finish();
//! assert_eq!(report.races.len(), 1);    // the race is caught live
//! ```
//!
//! Physical memory safety: tracked cells store their payloads in atomics
//! (relaxed ordering), so a *modeled* data race is never an actual Rust
//! data race — the detector sees the race, the process stays sound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod engine;
mod faults;
mod ingest;
mod mem;
mod pipeline;
mod replay;
mod ring;
mod runtime;
mod sync;
mod sync_ext;

pub use checkpoint::{CheckpointManifest, CHECKPOINT_FILE};
pub use engine::{EngineError, RuntimeOptions, SupervisorPolicy};
pub use faults::{corrupt_byte, silence_injected_panics, PanicOnEvent, INJECTED_PANIC_MARKER};
pub use ingest::{IngestSession, INGEST_BATCH};
pub use mem::{TrackedArray, TrackedCell};
pub use pipeline::{
    replay_pipelined, replay_pipelined_checkpointed, replay_pipelined_checkpointed_planned,
    replay_pipelined_planned, replay_pipelined_pruned, replay_pipelined_supervised,
};
pub use replay::{
    replay_checkpointed, replay_checkpointed_planned, replay_sharded, replay_sharded_planned,
    replay_sharded_pruned, replay_supervised, CheckpointInterval, CheckpointOptions, ReplayError,
};
pub use ring::{PushError, Spsc};
pub use runtime::{JoinTicket, Runtime, ThreadHandle};
pub use sync::{TrackedMutex, TrackedMutexGuard};
pub use sync_ext::{
    TrackedBarrier, TrackedCondvar, TrackedReadGuard, TrackedRwLock, TrackedWriteGuard,
};
