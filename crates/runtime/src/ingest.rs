//! Live ingestion sessions: the engine wrapper behind `dgrace serve`.
//!
//! Offline replay walks a complete [`dgrace_trace::Trace`]; a server
//! session receives its events incrementally from a socket and must
//! interleave feeding with race streaming, checkpointing, and an
//! eventual finalize — without ever holding the whole stream in memory.
//! [`IngestSession`] packages the sharded [`Engine`](crate::engine) for
//! that shape:
//!
//! * **Funnel-exact feeding.** Events are fed with the same ordering
//!   rules as [`crate::replay_sharded`]: accesses batch into a pending
//!   buffer, sync events flush the batch and broadcast, `Alloc` events
//!   register their range with the router first. A live session that
//!   feeds the same event sequence as an offline replay produces a
//!   byte-identical report. The pending batch is additionally capped at
//!   [`INGEST_BATCH`] events so a sync-free stream cannot grow it
//!   unboundedly.
//! * **Incremental race streaming.** [`IngestSession::drain_new_races`]
//!   reads each shard's live accumulator (via
//!   `Detector::races_so_far`) past a per-shard watermark — nothing is
//!   removed, so detector snapshots and the final report are unaffected
//!   by how often the caller drains.
//! * **Crash durability.** [`IngestSession::checkpoint`] captures the
//!   engine into the same [`CheckpointManifest`] (`DGCP`) container the
//!   offline paths persist; [`IngestSession::resume`] restores one into
//!   a fresh session. For a live stream the trace length is unknown, so
//!   the manifest records `trace_len == trace_offset == events fed`; a
//!   resumed session reports how many events it already covers and the
//!   client replays only the suffix.

use dgrace_detectors::{RaceReport, Report, ShardableDetector};
use dgrace_shadow::{process_gauge, MemComponent};
use dgrace_trace::{Event, PruneSet};

use crate::checkpoint::CheckpointManifest;
use crate::engine::{Engine, RuntimeOptions};

/// Maximum pending accesses before a forced dispatch. Bounds both the
/// session's buffering and the latency between an event arriving and
/// its shard seeing it, even on sync-free streams.
pub const INGEST_BATCH: usize = 256;

/// One live detection session: a sharded engine fed incrementally.
///
/// Sessions are single-consumer (the server drives each from its
/// client's connection handler); the engine underneath still shards the
/// analysis by address exactly like offline replay.
pub struct IngestSession {
    engine: Engine,
    det_name: String,
    pending: Vec<Event>,
    /// Logical events fed so far (accesses + syncs), i.e. the stream
    /// offset the next event will occupy.
    fed: u64,
    /// Per-shard positions into `races_so_far()` already drained.
    watermarks: Vec<usize>,
}

impl IngestSession {
    /// Builds a session: `shards` instances of the prototype behind an
    /// address-routing engine. `shadow_budget` caps each shard's modeled
    /// shadow bytes (the degradation tier below full analysis).
    pub fn new<D: ShardableDetector + ?Sized>(
        prototype: &D,
        shards: usize,
        shadow_budget: Option<u64>,
    ) -> Self {
        let shards = shards.max(1);
        let detectors = (0..shards)
            .map(|_| {
                let mut det = prototype.new_shard();
                if shadow_budget.is_some() {
                    det.set_shadow_budget(shadow_budget);
                }
                det
            })
            .collect();
        let opts = RuntimeOptions {
            shards,
            buffer_capacity: 1,
            record: false,
        };
        IngestSession {
            engine: Engine::with_prune(detectors, opts, PruneSet::empty()),
            det_name: prototype.name(),
            pending: Vec::new(),
            fed: 0,
            watermarks: vec![0; shards],
        }
    }

    /// The prototype detector's name (checkpoint identity).
    pub fn detector(&self) -> &str {
        &self.det_name
    }

    /// Number of detector shards.
    pub fn shards(&self) -> usize {
        self.watermarks.len()
    }

    /// Logical events fed so far — the offset of the next event.
    pub fn events(&self) -> u64 {
        self.fed
    }

    /// Feeds one event, preserving the offline funnel's ordering rules.
    pub fn feed(&mut self, ev: &Event) {
        if ev.is_sync() {
            self.flush();
            self.engine.emit_sync(ev.tid(), *ev);
        } else {
            if let Event::Alloc { addr, size, .. } = *ev {
                self.engine.register_range(addr.0, size);
            }
            self.pending.push(*ev);
            // Book the buffered event against the process-wide session
            // gauge (reporting + server shedding; never the ladder).
            process_gauge().add(MemComponent::Sessions, std::mem::size_of::<Event>() as u64);
            if self.pending.len() >= INGEST_BATCH {
                self.flush();
            }
        }
        self.fed += 1;
    }

    /// Feeds a batch of events in order.
    pub fn feed_all(&mut self, events: &[Event]) {
        for ev in events {
            self.feed(ev);
        }
    }

    /// Dispatches any pending accesses to the shards.
    pub fn flush(&mut self) {
        if !self.pending.is_empty() {
            process_gauge().sub(
                MemComponent::Sessions,
                (self.pending.len() * std::mem::size_of::<Event>()) as u64,
            );
            self.engine.dispatch(std::mem::take(&mut self.pending));
        }
    }

    /// Races reported since the last drain, across all shards. The
    /// detector accumulators are read, not consumed: snapshots and the
    /// final report are byte-identical no matter how often (or whether)
    /// this is called. Quarantined shards contribute nothing.
    pub fn drain_new_races(&mut self) -> Vec<RaceReport> {
        self.flush();
        self.engine.new_races(&mut self.watermarks)
    }

    /// Captures the session as a persistable [`CheckpointManifest`].
    /// The stream has no known end, so `trace_len` records the events
    /// covered so far (equal to `trace_offset`).
    pub fn checkpoint(&mut self) -> CheckpointManifest {
        self.flush();
        CheckpointManifest {
            detector: self.det_name.clone(),
            trace_len: self.fed,
            trace_offset: self.fed,
            state: self.engine.capture(),
        }
    }

    /// Restores a [`checkpoint`](IngestSession::checkpoint) into this
    /// freshly built session (same detector, same shard count). After a
    /// successful resume [`events`](IngestSession::events) reports the
    /// covered prefix; feeding the stream's suffix from that offset
    /// reproduces the uninterrupted run byte-identically. Races already
    /// drained by the previous incarnation are not re-drained (the
    /// final report still carries the complete set).
    pub fn resume(&mut self, m: &CheckpointManifest) -> Result<(), String> {
        if m.detector != self.det_name {
            return Err(format!(
                "checkpoint was taken with detector '{}', this session uses '{}'",
                m.detector, self.det_name
            ));
        }
        if m.shard_count() != self.shards() {
            return Err(format!(
                "checkpoint has {} shards, this session uses {}",
                m.shard_count(),
                self.shards()
            ));
        }
        if self.fed != 0 {
            return Err("resume into a session that already fed events".to_string());
        }
        self.engine.restore(&m.state)?;
        self.fed = m.trace_offset;
        // Races inside the restored snapshots were streamed by the
        // previous incarnation; start watermarks past them.
        self.watermarks.fill(0);
        let _ = self.engine.new_races(&mut self.watermarks);
        Ok(())
    }

    /// Finishes the session: flushes, finalizes every shard, and merges
    /// the reports (exact event counts, quarantine accounting included).
    pub fn finalize(mut self) -> Report {
        self.flush();
        self.engine.finish()
    }
}

impl Drop for IngestSession {
    fn drop(&mut self) {
        // Retire any still-buffered events from the session gauge (a
        // session abandoned mid-stream never flushed them).
        process_gauge().sub(
            MemComponent::Sessions,
            (self.pending.len() * std::mem::size_of::<Event>()) as u64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::{race_signature, DetectorExt, FastTrack};
    use dgrace_trace::{AccessSize, Trace, TraceBuilder};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, 0x100u64, AccessSize::U64)
            .write(1u32, 0x100u64, AccessSize::U64)
            .locked(0u32, 0u32, |b| {
                b.write(0u32, 0x5000u64, AccessSize::U64);
            })
            .locked(1u32, 0u32, |b| {
                b.write(1u32, 0x5000u64, AccessSize::U64);
            })
            .join(0u32, 1u32);
        b.build()
    }

    #[test]
    fn session_matches_offline_run() {
        let trace = racy_trace();
        let solo = FastTrack::new().run(&trace);
        for shards in [1usize, 2, 4] {
            let mut s = IngestSession::new(&FastTrack::new(), shards, None);
            s.feed_all(&trace.events);
            let rep = s.finalize();
            assert_eq!(
                race_signature(&rep),
                race_signature(&solo),
                "shards={shards}"
            );
            assert_eq!(rep.stats.events, trace.len() as u64);
        }
    }

    #[test]
    fn incremental_drain_does_not_perturb_final_report() {
        let trace = racy_trace();
        let solo = FastTrack::new().run(&trace);
        let mut s = IngestSession::new(&FastTrack::new(), 2, None);
        let mut streamed = 0usize;
        for ev in trace.iter() {
            s.feed(ev);
            streamed += s.drain_new_races().len();
        }
        assert!(streamed > 0, "races streamed incrementally");
        // A second drain with no new events yields nothing.
        assert!(s.drain_new_races().is_empty());
        let rep = s.finalize();
        assert_eq!(race_signature(&rep), race_signature(&solo));
        assert_eq!(streamed, rep.races.len());
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        let trace = racy_trace();
        for shards in [1usize, 2] {
            let mut whole = IngestSession::new(&FastTrack::new(), shards, None);
            whole.feed_all(&trace.events);
            let want = whole.finalize();

            for cut in 0..trace.len() {
                let mut first = IngestSession::new(&FastTrack::new(), shards, None);
                first.feed_all(&trace.events[..cut]);
                let m = first.checkpoint();
                assert_eq!(m.trace_offset, cut as u64);
                drop(first);

                let mut second = IngestSession::new(&FastTrack::new(), shards, None);
                second.resume(&m).expect("resume");
                assert_eq!(second.events(), cut as u64);
                second.feed_all(&trace.events[cut..]);
                let got = second.finalize();
                assert_eq!(
                    race_signature(&got),
                    race_signature(&want),
                    "shards={shards} cut={cut}"
                );
                assert_eq!(got.stats.events, want.stats.events, "cut={cut}");
            }
        }
    }

    #[test]
    fn resume_rejects_mismatches() {
        let mut a = IngestSession::new(&FastTrack::new(), 2, None);
        a.feed(&Event::Fork {
            parent: dgrace_trace::Tid(0),
            child: dgrace_trace::Tid(1),
        });
        let m = a.checkpoint();
        let mut wrong_shards = IngestSession::new(&FastTrack::new(), 3, None);
        assert!(wrong_shards.resume(&m).is_err());
        let mut wrong_det = IngestSession::new(&dgrace_detectors::Djit::new(), 2, None);
        assert!(wrong_det.resume(&m).is_err());
        let mut used = IngestSession::new(&FastTrack::new(), 2, None);
        used.feed(&Event::Fork {
            parent: dgrace_trace::Tid(0),
            child: dgrace_trace::Tid(1),
        });
        assert!(used.resume(&m).is_err());
    }
}
