//! The sharded, batched detection engine.
//!
//! This module replaces the original global-mutex event funnel (one
//! `Mutex<Box<dyn Detector>>` taken per event) with a design that keeps
//! detection off the instrumented threads' fast path and lets independent
//! address regions be analyzed in parallel:
//!
//! * **Per-thread batching.** Every tracked thread owns a private
//!   fixed-capacity lock-free queue ([`ThreadBuf`]). Memory accesses are
//!   appended without taking any lock; the buffer is flushed when it
//!   overflows, at *every* synchronization operation the thread performs,
//!   and at `finish`.
//! * **Address-sharded detectors.** The engine owns N detector shards,
//!   each a complete detector instance behind its own mutex. Accesses are
//!   routed by address: each allocated object (with its anti-sharing
//!   padding) is assigned wholly to one shard, so the dynamic-granularity
//!   neighbor-sharing machine sees every sharing-adjacent byte inside a
//!   single shard.
//! * **Broadcast synchronization.** Sync events (acquire/release,
//!   fork/join, rwlock, condvar, barrier) are stamped with a global
//!   sequence number while *all* shard locks are held and fed to every
//!   shard, so each shard's happens-before state is exact and identical.
//!
//! ## Why this is equivalent to the serialized detector
//!
//! Sequence stamps are allocated while holding the destination shard's
//! lock (all shard locks, for a broadcast), so for every shard the feed
//! order equals the stamp order. Sorting the journal by stamp therefore
//! yields a single serialization σ of the run whose restriction to each
//! shard's addresses (plus all syncs) is exactly what that shard
//! processed. A vector-clock detector's verdict on an address depends
//! only on the sync events and the accesses to sharing-adjacent
//! addresses — and the router keeps sharing-adjacent addresses (same
//! padded object) in one shard — so replaying σ through one serialized
//! detector reproduces the union of the shards' race sets. The
//! differential tests in `tests/sharded_equivalence.rs` check this
//! end-to-end.
//!
//! ## Flush ordering rules (the part that is easy to get wrong)
//!
//! 1. A thread's buffer is flushed **before** any of its sync events is
//!    broadcast — including lock *acquires*: the detector merges the
//!    lock's clock into the thread's clock at the acquire, so a buffered
//!    pre-acquire access processed after it would appear protected.
//! 2. A child's buffer is flushed **before** the parent's `Join` is
//!    broadcast (the parent drains it; the real thread has already
//!    terminated), otherwise the child's tail accesses would appear
//!    ordered after the join edge and races would be missed or invented.
//! 3. `finish` flushes every registered buffer before collecting shard
//!    reports, so `stats.events` equals the exact number of emitted
//!    events.
//!
//! Lock order is always: buffer flush lock → shard locks in ascending
//! index. No path acquires them in the reverse direction, so the engine
//! cannot deadlock against itself.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::queue::ArrayQueue;
use dgrace_detectors::{merge_shard_reports, Detector, Recorder, Report, ShardFailure, Tee};
use dgrace_trace::{Event, PruneSet, Tid, Trace};
use parking_lot::{Mutex, MutexGuard, RwLock};

/// A recoverable engine-level failure, surfaced by the `try_*` variants
/// of the [`crate::Runtime`] extraction methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Every detector shard panicked and was quarantined; no detector
    /// state survived to produce a report.
    AllShardsFailed(Vec<ShardFailure>),
    /// The engine was not built with journal recording (or a single-shard
    /// `Recorder`), so no trace can be reconstructed.
    NotRecording,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::AllShardsFailed(fails) => {
                write!(f, "all {} detector shards failed", fails.len())?;
                if let Some(first) = fails.first() {
                    write!(f, " (first: {first})")?;
                }
                Ok(())
            }
            EngineError::NotRecording => {
                write!(f, "engine is not recording (enable RuntimeOptions::record)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Renders a panic payload for a [`ShardFailure`] report.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Tuning knobs for the online runtime.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeOptions {
    /// Number of detector shards. `1` reproduces the serialized engine.
    pub shards: usize,
    /// Capacity of each thread's private event buffer. `1` disables
    /// batching (every access is dispatched individually — the
    /// serialized-baseline configuration of the scaling bench).
    pub buffer_capacity: usize,
    /// When `true`, the engine journals every event with its sequence
    /// stamp; `take_recorded` then reconstructs the observed
    /// serialization as a [`Trace`].
    pub record: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            shards: 1,
            buffer_capacity: 256,
            record: false,
        }
    }
}

/// One thread's private event buffer: a lock-free bounded queue plus a
/// flush lock that serializes drainers (the owner on overflow/sync, the
/// parent at join, the engine at finish).
pub(crate) struct ThreadBuf {
    queue: ArrayQueue<Event>,
    flush: Mutex<()>,
}

impl ThreadBuf {
    fn new(capacity: usize) -> Self {
        ThreadBuf {
            queue: ArrayQueue::new(capacity.max(1)),
            flush: Mutex::new(()),
        }
    }
}

struct ShardState {
    /// `None` once the shard is quarantined: its detector panicked, was
    /// dropped, and the shard only counts dropped events from then on.
    det: Option<Box<dyn Detector + Send>>,
    /// `(stamp, event)` pairs, appended in stamp order; only populated
    /// when recording. Quarantined shards keep journaling, so the
    /// recorded serialization stays exact.
    journal: Vec<(u64, Event)>,
    /// The panic that quarantined this shard, if any.
    failure: Option<ShardFailure>,
    /// Access events routed here but never processed (panicked mid-batch
    /// or arrived after quarantine). Sync broadcasts are not counted:
    /// healthy shards still process them.
    dropped: u64,
}

impl ShardState {
    /// Quarantines the shard after a panic: records the failure and drops
    /// the (possibly corrupt) detector. The drop itself is contained too —
    /// a detector that panics again in `Drop` must not take the engine
    /// down with it.
    #[cold]
    fn quarantine(&mut self, shard: usize, event_seq: u64, payload: Box<dyn std::any::Any + Send>) {
        let msg = panic_message(payload.as_ref());
        let det = self.det.take();
        let _ = catch_unwind(AssertUnwindSafe(move || drop(det)));
        self.failure = Some(ShardFailure {
            shard,
            event_seq,
            payload: msg,
        });
    }
}

/// Region size of the fallback router for addresses outside every
/// registered allocation (4 KiB). Offline traces that carry no `Alloc`
/// events are routed at this granularity; a region boundary can then
/// split sharing-adjacent addresses across shards, which is documented
/// as a limitation of offline sharded replay (the online runtime always
/// registers whole objects).
const REGION_BITS: u32 = 12;

/// Routes addresses to shards. Allocated objects are registered as whole
/// ranges (round-robin across shards) so neighbor sharing never crosses
/// a shard boundary; unregistered addresses fall back to hashing their
/// 4 KiB region.
struct Router {
    /// Sorted, disjoint `(base, end, shard)` ranges.
    ranges: Vec<(u64, u64, usize)>,
    next_shard: usize,
    shards: usize,
}

impl Router {
    fn new(shards: usize) -> Self {
        Router {
            ranges: Vec::new(),
            next_shard: 0,
            shards,
        }
    }

    fn route(&self, addr: u64) -> usize {
        if self.shards <= 1 {
            return 0;
        }
        use std::cmp::Ordering as O;
        match self.ranges.binary_search_by(|&(base, end, _)| {
            if end <= addr {
                O::Less
            } else if base > addr {
                O::Greater
            } else {
                O::Equal
            }
        }) {
            Ok(i) => self.ranges[i].2,
            Err(_) => ((addr >> REGION_BITS) as usize) % self.shards,
        }
    }

    fn register(&mut self, base: u64, len: u64) {
        if self.shards <= 1 {
            return;
        }
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards;
        let pos = self.ranges.partition_point(|r| r.0 < base);
        self.ranges.insert(pos, (base, base + len.max(1), shard));
    }

    /// Collects into `out` every shard owning any byte of
    /// `[base, base+len)`: registered ranges overlapping it plus the
    /// region hash of each uncovered 4 KiB region. A `Free` event must
    /// reach all of them — routing it by base address alone would leave
    /// stale shadow state in the other shards, which resurfaces as
    /// phantom races when the address range is reused.
    fn routes_for_range(&self, base: u64, len: u64, out: &mut Vec<usize>) {
        out.clear();
        if self.shards <= 1 {
            out.push(0);
            return;
        }
        let end = base.saturating_add(len.max(1));
        let mut cursor = base;
        let start = self.ranges.partition_point(|r| r.1 <= base);
        for &(rb, re, shard) in &self.ranges[start..] {
            if rb >= end || out.len() == self.shards {
                break;
            }
            // Hash-routed gap before this registered range.
            while cursor < rb.min(end) && out.len() < self.shards {
                let s = ((cursor >> REGION_BITS) as usize) % self.shards;
                if !out.contains(&s) {
                    out.push(s);
                }
                cursor = ((cursor >> REGION_BITS) + 1) << REGION_BITS;
            }
            if !out.contains(&shard) {
                out.push(shard);
            }
            cursor = cursor.max(re);
        }
        while cursor < end && out.len() < self.shards {
            let s = ((cursor >> REGION_BITS) as usize) % self.shards;
            if !out.contains(&s) {
                out.push(s);
            }
            cursor = ((cursor >> REGION_BITS) + 1) << REGION_BITS;
        }
    }
}

/// The sharded, batched detection engine. See the module docs for the
/// design and its ordering rules.
pub(crate) struct Engine {
    shards: Vec<Mutex<ShardState>>,
    /// Global sequence stamp; allocated under shard locks so per-shard
    /// feed order equals stamp order.
    seq: AtomicU64,
    /// Exact count of logical events emitted (broadcasts count once).
    emitted: AtomicU64,
    record: bool,
    capacity: usize,
    router: RwLock<Router>,
    /// Per-tid buffer registry, indexed by `Tid::index()`.
    bufs: RwLock<Vec<Option<Arc<ThreadBuf>>>>,
    /// Warm-start prune predicate: accesses it covers are dropped before
    /// buffering/dispatch (and before the journal — a recorded trace
    /// excludes pruned accesses). Empty by default.
    prune: PruneSet,
    /// Accesses dropped by the prune predicate.
    pruned: AtomicU64,
}

impl Engine {
    pub(crate) fn new(detectors: Vec<Box<dyn Detector + Send>>, opts: RuntimeOptions) -> Self {
        Self::with_prune(detectors, opts, PruneSet::empty())
    }

    pub(crate) fn with_prune(
        detectors: Vec<Box<dyn Detector + Send>>,
        opts: RuntimeOptions,
        prune: PruneSet,
    ) -> Self {
        assert!(!detectors.is_empty(), "engine needs at least one shard");
        let shards = detectors
            .into_iter()
            .map(|det| {
                Mutex::new(ShardState {
                    det: Some(det),
                    journal: Vec::new(),
                    failure: None,
                    dropped: 0,
                })
            })
            .collect::<Vec<_>>();
        let n = shards.len();
        Engine {
            shards,
            seq: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            record: opts.record,
            capacity: opts.buffer_capacity,
            router: RwLock::new(Router::new(n)),
            bufs: RwLock::new(Vec::new()),
            prune,
            pruned: AtomicU64::new(0),
        }
    }

    /// Whether the warm-start predicate drops this event.
    fn prunes(&self, ev: &Event) -> bool {
        match ev.access() {
            Some((addr, size, _)) => self.prune.prunes(addr, size.bytes()),
            None => false,
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The buffer of `tid`, creating it on first use.
    pub(crate) fn buffer_for(&self, tid: Tid) -> Arc<ThreadBuf> {
        let idx = tid.index();
        {
            let bufs = self.bufs.read();
            if let Some(Some(buf)) = bufs.get(idx) {
                return Arc::clone(buf);
            }
        }
        let mut bufs = self.bufs.write();
        if bufs.len() <= idx {
            bufs.resize_with(idx + 1, || None);
        }
        Arc::clone(bufs[idx].get_or_insert_with(|| Arc::new(ThreadBuf::new(self.capacity))))
    }

    fn get_buf(&self, tid: Tid) -> Option<Arc<ThreadBuf>> {
        self.bufs.read().get(tid.index()).cloned().flatten()
    }

    /// Lock-free fast path: appends an access to `buf`, flushing first
    /// when the buffer is full. Pruned accesses are dropped here, before
    /// they ever occupy buffer space.
    pub(crate) fn push(&self, buf: &ThreadBuf, ev: Event) {
        if !self.prune.is_empty() && self.prunes(&ev) {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ev = ev;
        loop {
            match buf.queue.push(ev) {
                Ok(()) => return,
                Err(back) => {
                    self.flush_buf(buf);
                    ev = back;
                }
            }
        }
    }

    /// Drains `buf` and dispatches the drained batch to the shards.
    ///
    /// The flush lock serializes drainers so a batch is always a
    /// program-order prefix of the owner's pending events.
    pub(crate) fn flush_buf(&self, buf: &ThreadBuf) {
        let _g = buf.flush.lock();
        let mut batch = Vec::with_capacity(buf.queue.len());
        while let Some(ev) = buf.queue.pop() {
            batch.push(ev);
        }
        if !batch.is_empty() {
            self.dispatch(batch);
        }
    }

    /// Flushes every registered thread buffer.
    pub(crate) fn flush_all(&self) {
        let bufs: Vec<Arc<ThreadBuf>> = self.bufs.read().iter().flatten().cloned().collect();
        for buf in bufs {
            self.flush_buf(&buf);
        }
    }

    /// Flushes `tid`'s buffer if it exists (used by the join protocol and
    /// offline replay, where a tid may have no buffer).
    pub(crate) fn flush_tid(&self, tid: Tid) {
        if let Some(buf) = self.get_buf(tid) {
            self.flush_buf(&buf);
        }
    }

    /// Routes a batch of access/alloc/free events to the shards.
    ///
    /// Each per-shard part receives one sequence stamp, taken while the
    /// shard lock is held; events within a part keep their program order.
    pub(crate) fn dispatch(&self, mut batch: Vec<Event>) {
        // Offline replay feeds dispatch directly (bypassing push), so the
        // prune predicate is applied here too; online batches were
        // already filtered at push time and pass through unchanged.
        if !self.prune.is_empty() {
            let before = batch.len();
            batch.retain(|ev| !self.prunes(ev));
            let dropped = (before - batch.len()) as u64;
            if dropped > 0 {
                self.pruned.fetch_add(dropped, Ordering::Relaxed);
            }
            if batch.is_empty() {
                return;
            }
        }
        let n = batch.len() as u64;
        if self.shards.len() == 1 {
            let mut shard = self.shards[0].lock();
            let stamp = self.seq.fetch_add(1, Ordering::Relaxed);
            Self::feed(&mut shard, 0, stamp, &batch);
            if self.record {
                shard
                    .journal
                    .extend(batch.into_iter().map(|ev| (stamp, ev)));
            }
        } else {
            let mut parts: Vec<Vec<Event>> = vec![Vec::new(); self.shards.len()];
            {
                let router = self.router.read();
                let mut free_targets: Vec<usize> = Vec::new();
                for ev in batch {
                    if let Event::Free { addr, size, .. } = ev {
                        // Delivered to every owning shard; a shard
                        // holding no cells in the range clears nothing.
                        router.routes_for_range(addr.0, size, &mut free_targets);
                        for &s in &free_targets {
                            parts[s].push(ev);
                        }
                    } else {
                        parts[router.route(route_addr(&ev))].push(ev);
                    }
                }
            }
            for (i, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let mut shard = self.shards[i].lock();
                let stamp = self.seq.fetch_add(1, Ordering::Relaxed);
                Self::feed(&mut shard, i, stamp, &part);
                if self.record {
                    shard.journal.extend(part.into_iter().map(|ev| (stamp, ev)));
                }
            }
        }
        self.emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Feeds one stamped part to a shard, containing panics. The
    /// `catch_unwind` is per *batch*, not per event, so the clean-path
    /// cost is one landing pad per dispatch, off the per-event hot path.
    /// A panicking detector is quarantined (state dropped, failure
    /// recorded) and the unprocessed remainder of the part — including
    /// the event that panicked — is counted as dropped.
    fn feed(st: &mut ShardState, shard: usize, stamp: u64, part: &[Event]) {
        let Some(det) = st.det.as_mut() else {
            st.dropped += part.len() as u64;
            return;
        };
        let mut processed = 0usize;
        let result = catch_unwind(AssertUnwindSafe(|| {
            for ev in part {
                det.on_event(ev);
                processed += 1;
            }
        }));
        if let Err(payload) = result {
            st.dropped += (part.len() - processed) as u64;
            st.quarantine(shard, stamp, payload);
        }
    }

    /// Emits a sync event as `tid`: flushes `tid`'s buffer (rule 1 of the
    /// module docs), then broadcasts the event to every shard.
    pub(crate) fn emit_sync(&self, tid: Tid, ev: Event) {
        self.flush_tid(tid);
        self.broadcast(ev);
    }

    /// Stamps a sync event once (holding every shard lock) and feeds it
    /// to all shards, keeping their happens-before states identical.
    fn broadcast(&self, ev: Event) {
        let mut guards: Vec<MutexGuard<'_, ShardState>> =
            self.shards.iter().map(|s| s.lock()).collect();
        let stamp = self.seq.fetch_add(1, Ordering::Relaxed);
        for (i, g) in guards.iter_mut().enumerate() {
            // Quarantined shards are skipped without counting a drop:
            // the healthy shards still process the sync event, so the
            // logical event is not lost from the run.
            let Some(det) = g.det.as_mut() else { continue };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| det.on_event(&ev))) {
                g.quarantine(i, stamp, payload);
            }
        }
        if self.record {
            guards[0].journal.push((stamp, ev));
        }
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers an allocated object's (padded) range so all its bytes —
    /// and thus all its sharing-adjacent neighbors — route to one shard.
    pub(crate) fn register_range(&self, base: u64, len: u64) {
        self.router.write().register(base, len);
    }

    /// Emits an allocation event: flushes the allocating thread's buffer,
    /// then dispatches the event to the object's shard immediately, so
    /// every shard-feed (and the journal) shows the `Alloc` before any
    /// access to the object.
    pub(crate) fn emit_alloc(&self, tid: Tid, ev: Event) {
        self.flush_tid(tid);
        self.dispatch(vec![ev]);
    }

    /// Flushes all buffers, finishes every shard, and merges the healthy
    /// shards' reports. `stats.events` of the merged report is the exact
    /// emitted count.
    ///
    /// Quarantined shards contribute a [`ShardFailure`] (and their
    /// dropped-event counts) instead of a report; the merged report is
    /// then *degraded* — its race set is exact for the healthy shards'
    /// addresses. A shard whose `finish` itself panics is quarantined the
    /// same way. With zero healthy shards the report carries only the
    /// failures and counters; it never hangs or poisons a lock.
    pub(crate) fn finish(&self) -> Report {
        self.flush_all();
        let emitted = self.emitted.swap(0, Ordering::Relaxed);
        let pruned = self.pruned.swap(0, Ordering::Relaxed);
        let mut reports: Vec<Report> = Vec::new();
        let mut failures: Vec<ShardFailure> = Vec::new();
        let mut dropped = 0u64;
        for (i, s) in self.shards.iter().enumerate() {
            let mut st = s.lock();
            dropped += std::mem::take(&mut st.dropped);
            if let Some(f) = st.failure.take() {
                failures.push(f);
                continue;
            }
            let Some(det) = st.det.as_mut() else { continue };
            match catch_unwind(AssertUnwindSafe(|| det.finish())) {
                Ok(rep) => reports.push(rep),
                Err(payload) => {
                    let stamp = self.seq.load(Ordering::Relaxed);
                    st.quarantine(i, stamp, payload);
                    failures.extend(st.failure.take());
                }
            }
        }
        let healthy = reports.len();
        let mut rep = match healthy {
            0 => Report::default(),
            1 if self.shards.len() == 1 => reports.pop().unwrap_or_default(),
            _ => merge_shard_reports(reports),
        };
        if healthy != 1 || self.shards.len() != 1 {
            // Broadcasts reach every shard (the sum over-counts them) and
            // quarantined shards report nothing (the sum under-counts):
            // the atomic counter is the exact logical event count.
            rep.stats.events = emitted;
        }
        // Same contract as the offline `StaticPruneFilter`: `events`
        // counts everything that arrived (including pruned accesses),
        // `accesses` only what was checked.
        rep.stats.events += pruned;
        rep.stats.pruned += pruned;
        rep.stats.dropped += dropped;
        rep.failures.extend(failures);
        rep.failures.sort_by_key(|f| (f.shard, f.event_seq));
        rep
    }

    /// Reconstructs the recorded serialization (journal mode), or falls
    /// back to the single-shard `Recorder`/`Tee` downcast used by the
    /// pre-sharding API.
    pub(crate) fn take_recorded(&self) -> Option<Trace> {
        self.flush_all();
        if self.record {
            let mut entries: Vec<(u64, Event)> = Vec::new();
            for shard in &self.shards {
                entries.append(&mut shard.lock().journal);
            }
            // Stable: entries sharing a stamp (one dispatched part) keep
            // their program order.
            entries.sort_by_key(|&(stamp, _)| stamp);
            return Some(Trace::from_events(
                entries.into_iter().map(|(_, ev)| ev).collect(),
            ));
        }
        if self.shards.len() != 1 {
            return None;
        }
        let mut shard = self.shards[0].lock();
        let det = shard.det.as_mut()?;
        let any: &mut dyn std::any::Any = &mut **det;
        if let Some(rec) = any.downcast_mut::<Recorder>() {
            return Some(rec.take_trace());
        }
        // Common compositions: Recorder teed with a live detector.
        macro_rules! try_tee {
            ($($live:ty),*) => {$(
                if let Some(tee) = (&mut **det as &mut dyn std::any::Any)
                    .downcast_mut::<Tee<Recorder, $live>>()
                {
                    return Some(tee.first_mut().take_trace());
                }
            )*};
        }
        try_tee!(
            dgrace_core::DynamicGranularity,
            dgrace_detectors::FastTrack,
            dgrace_detectors::Djit
        );
        None
    }
}

/// The routing address of an access/alloc/free event. Sync events never
/// reach `dispatch`, but routing them to shard 0 is still well-defined.
fn route_addr(ev: &Event) -> u64 {
    match *ev {
        Event::Read { addr, .. }
        | Event::Write { addr, .. }
        | Event::Alloc { addr, .. }
        | Event::Free { addr, .. } => addr.0,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::NopDetector;
    use dgrace_trace::{AccessSize, Addr};

    fn nop_shards(n: usize) -> Vec<Box<dyn Detector + Send>> {
        (0..n)
            .map(|_| Box::new(NopDetector::default()) as Box<dyn Detector + Send>)
            .collect()
    }

    #[test]
    fn router_prefers_registered_ranges() {
        let mut r = Router::new(4);
        r.register(0x1000, 0x200);
        r.register(0x2000, 0x200);
        let a = r.route(0x1000);
        assert_eq!(r.route(0x11ff), a, "whole object in one shard");
        let b = r.route(0x2000);
        assert_ne!(a, b, "round-robin assigns distinct shards");
        // Unregistered addresses fall back to region hashing.
        let _ = r.route(0x9999_0000);
    }

    #[test]
    fn free_spanning_region_boundary_reaches_every_owning_shard() {
        // Unregistered range straddling the 4 KiB region boundary at
        // 0x1000: region 0 hashes to shard 0, region 1 to shard 1.
        let r = Router::new(2);
        let mut out = Vec::new();
        r.routes_for_range(0xFE0, 0x40, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1], "free covers both hash regions");
        // Entirely inside one region: single target.
        r.routes_for_range(0x100, 0x40, &mut out);
        assert_eq!(out, vec![0]);

        // Registered ranges interleaved with hash-routed gaps.
        let mut r = Router::new(4);
        r.register(0x1100, 0x100); // shard 0
        r.register(0x5000, 0x100); // shard 1
        let mut out = Vec::new();
        // Covers the gap before 0x1100 (region 1 → shard 1), the
        // registered object (shard 0), and the gap after it (region 1
        // again, already present).
        r.routes_for_range(0x1000, 0x300, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
        // A free of exactly the registered object hits only its shard.
        r.routes_for_range(0x5000, 0x100, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn overflow_flushes_and_nothing_is_lost() {
        let eng = Engine::new(
            nop_shards(2),
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: true,
            },
        );
        let buf = eng.buffer_for(Tid(0));
        for i in 0..10u64 {
            eng.push(
                &buf,
                Event::Write {
                    tid: Tid(0),
                    addr: Addr(0x1000 + i * 8),
                    size: AccessSize::U64,
                },
            );
        }
        let trace = eng.take_recorded().expect("recording engine");
        assert_eq!(trace.len(), 10);
        let rep = eng.finish();
        assert_eq!(rep.stats.events, 10);
    }

    #[test]
    fn panicking_shard_is_quarantined_not_fatal() {
        crate::silence_injected_panics();
        // Shard 1 dies at its first event; shard 0 keeps detecting.
        let proto = crate::PanicOnEvent::new(dgrace_detectors::FastTrack::new(), 1, 1);
        use dgrace_detectors::ShardableDetector;
        let detectors = (0..2).map(|_| proto.new_shard()).collect();
        let eng = Engine::new(
            detectors,
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: true,
            },
        );
        // Region hash routing: 0x0000 → shard 0, 0x1000 → shard 1.
        let w = |tid: u32, addr: u64| Event::Write {
            tid: Tid(tid),
            addr: Addr(addr),
            size: AccessSize::U64,
        };
        eng.dispatch(vec![w(0, 0x100)]); // shard 0
        eng.dispatch(vec![w(0, 0x1100), w(0, 0x1108)]); // shard 1: dies at first
        eng.dispatch(vec![w(0, 0x1110)]); // shard 1: dropped post-quarantine
        eng.dispatch(vec![w(1, 0x100)]); // shard 0: races with the first write
                                         // The journal still covers every event, quarantined shard included.
        let trace = eng.take_recorded().expect("recording engine");
        assert_eq!(trace.len(), 5);
        let rep = eng.finish();
        assert!(rep.is_degraded());
        assert_eq!(rep.failures.len(), 1);
        assert_eq!(rep.failures[0].shard, 1);
        assert!(rep.failures[0].payload.contains("fault-injection"));
        assert_eq!(rep.stats.dropped, 3, "panicking event + 1 tail + 1 late");
        assert_eq!(rep.stats.events, 5, "logical event count stays exact");
        assert_eq!(rep.races.len(), 1, "healthy shard's race survives");
        assert_eq!(rep.races[0].addr, Addr(0x100));
    }

    #[test]
    fn all_shards_failing_still_terminates() {
        crate::silence_injected_panics();
        let proto = crate::PanicOnEvent::new(dgrace_detectors::FastTrack::new(), 0, 1);
        use dgrace_detectors::ShardableDetector;
        let eng = Engine::new(
            vec![proto.new_shard()],
            RuntimeOptions {
                shards: 1,
                buffer_capacity: 4,
                record: false,
            },
        );
        eng.dispatch(vec![Event::Write {
            tid: Tid(0),
            addr: Addr(0x100),
            size: AccessSize::U64,
        }]);
        let rep = eng.finish();
        assert_eq!(rep.failures.len(), 1);
        assert!(rep.races.is_empty());
        assert_eq!(rep.stats.events, 1);
        assert_eq!(rep.stats.dropped, 1);
    }

    #[test]
    fn broadcast_panic_quarantines_without_drop_count() {
        crate::silence_injected_panics();
        let proto = crate::PanicOnEvent::new(dgrace_detectors::FastTrack::new(), 1, 1);
        use dgrace_detectors::ShardableDetector;
        let detectors = (0..2).map(|_| proto.new_shard()).collect();
        let eng = Engine::new(
            detectors,
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: false,
            },
        );
        eng.emit_sync(
            Tid(0),
            Event::Acquire {
                tid: Tid(0),
                lock: dgrace_trace::LockId(0),
            },
        );
        let rep = eng.finish();
        assert_eq!(rep.failures.len(), 1);
        assert_eq!(
            rep.stats.dropped, 0,
            "healthy shards processed the broadcast; nothing was lost"
        );
        assert_eq!(rep.stats.events, 1);
    }

    #[test]
    fn broadcast_counts_once() {
        let eng = Engine::new(
            nop_shards(4),
            RuntimeOptions {
                shards: 4,
                buffer_capacity: 8,
                record: false,
            },
        );
        eng.emit_sync(
            Tid(0),
            Event::Acquire {
                tid: Tid(0),
                lock: dgrace_trace::LockId(0),
            },
        );
        let rep = eng.finish();
        assert_eq!(rep.stats.events, 1, "a broadcast is one logical event");
    }
}
