//! The sharded, batched detection engine.
//!
//! This module replaces the original global-mutex event funnel (one
//! `Mutex<Box<dyn Detector>>` taken per event) with a design that keeps
//! detection off the instrumented threads' fast path and lets independent
//! address regions be analyzed in parallel:
//!
//! * **Per-thread batching.** Every tracked thread owns a private
//!   fixed-capacity lock-free queue ([`ThreadBuf`]). Memory accesses are
//!   appended without taking any lock; the buffer is flushed when it
//!   overflows, at *every* synchronization operation the thread performs,
//!   and at `finish`.
//! * **Address-sharded detectors.** The engine owns N detector shards,
//!   each a complete detector instance behind its own mutex. Accesses are
//!   routed by address: each allocated object (with its anti-sharing
//!   padding) is assigned wholly to one shard, so the dynamic-granularity
//!   neighbor-sharing machine sees every sharing-adjacent byte inside a
//!   single shard.
//! * **Broadcast synchronization.** Sync events (acquire/release,
//!   fork/join, rwlock, condvar, barrier) are stamped with a global
//!   sequence number while *all* shard locks are held and fed to every
//!   shard, so each shard's happens-before state is exact and identical.
//! * **Supervised self-healing.** When built with a detector factory and
//!   a [`SupervisorPolicy`], a shard whose detector panics is not
//!   permanently quarantined: the supervisor spawns a replacement, rolls
//!   it forward from the shard's last checkpoint (or from scratch) by
//!   replaying the shard's journal delta merged with the sync journal,
//!   and re-feeds the batch that panicked. Only after `max_respawns`
//!   respawns inside a `window`-stamp window — or when the replay itself
//!   fails — does the shard fall back to permanent quarantine with a
//!   structured [`ShardFailure`].
//!
//! ## Why this is equivalent to the serialized detector
//!
//! Sequence stamps are allocated while holding the destination shard's
//! lock (all shard locks, for a broadcast), so for every shard the feed
//! order equals the stamp order. Sorting the journal by stamp therefore
//! yields a single serialization σ of the run whose restriction to each
//! shard's addresses (plus all syncs) is exactly what that shard
//! processed. A vector-clock detector's verdict on an address depends
//! only on the sync events and the accesses to sharing-adjacent
//! addresses — and the router keeps sharing-adjacent addresses (same
//! padded object) in one shard — so replaying σ through one serialized
//! detector reproduces the union of the shards' race sets. The
//! differential tests in `tests/sharded_equivalence.rs` check this
//! end-to-end.
//!
//! The same argument is why a respawned shard is *exact*, not
//! approximate: the shard's journal holds its accesses in stamp order and
//! the sync journal holds every broadcast in stamp order, so the
//! stamp-merge of the two suffixes (after the checkpoint position) is
//! precisely the event sequence the dead detector had consumed.
//!
//! ## Flush ordering rules (the part that is easy to get wrong)
//!
//! 1. A thread's buffer is flushed **before** any of its sync events is
//!    broadcast — including lock *acquires*: the detector merges the
//!    lock's clock into the thread's clock at the acquire, so a buffered
//!    pre-acquire access processed after it would appear protected.
//! 2. A child's buffer is flushed **before** the parent's `Join` is
//!    broadcast (the parent drains it; the real thread has already
//!    terminated), otherwise the child's tail accesses would appear
//!    ordered after the join edge and races would be missed or invented.
//! 3. `finish` flushes every registered buffer before collecting shard
//!    reports, so `stats.events` equals the exact number of emitted
//!    events.
//!
//! Lock order is always: buffer flush lock → shard locks in ascending
//! index → sync-journal lock. No path acquires them in the reverse
//! direction, so the engine cannot deadlock against itself. In
//! particular, `broadcast` appends to the sync journal *before* releasing
//! the shard locks, so any thread holding a shard lock observes a sync
//! journal consistent with what that shard has been fed — the invariant
//! the supervisor's delta replay depends on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::queue::ArrayQueue;
use dgrace_detectors::{merge_shard_reports, Detector, Recorder, Report, ShardFailure, Tee};
use dgrace_trace::{Event, PruneSet, Tid, Trace};
use parking_lot::{Mutex, MutexGuard, RwLock};

/// A recoverable engine-level failure, surfaced by the `try_*` variants
/// of the [`crate::Runtime`] extraction methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// Every detector shard panicked and was quarantined; no detector
    /// state survived to produce a report.
    AllShardsFailed(Vec<ShardFailure>),
    /// The engine was not built with journal recording (or a single-shard
    /// `Recorder`), so no trace can be reconstructed.
    NotRecording,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::AllShardsFailed(fails) => {
                write!(f, "all {} detector shards failed", fails.len())?;
                if let Some(first) = fails.first() {
                    write!(f, " (first: {first})")?;
                }
                Ok(())
            }
            EngineError::NotRecording => {
                write!(f, "engine is not recording (enable RuntimeOptions::record)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Renders a panic payload for a [`ShardFailure`] report, returning the
/// message and the payload's type name. Besides the common string
/// payloads, the primitive types `panic_any` is typically fed in tests
/// and assertion macros are rendered too, instead of collapsing to an
/// opaque placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> (String, &'static str) {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return ((*s).to_string(), "str");
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return (s.clone(), "str");
    }
    macro_rules! try_prim {
        ($($t:ty),*) => {$(
            if let Some(v) = payload.downcast_ref::<$t>() {
                return (v.to_string(), stringify!($t));
            }
        )*};
    }
    try_prim!(i32, u32, i64, u64, usize, bool, char);
    ("non-string panic payload".to_string(), "opaque")
}

/// Renders an event as kind + operands for failure diagnostics, e.g.
/// `"write 0x1100 (4 bytes) by t2"`.
fn describe_event(ev: &Event) -> String {
    match *ev {
        Event::Read { tid, addr, size } => {
            format!("read {addr} ({} bytes) by t{}", size.bytes(), tid.0)
        }
        Event::Write { tid, addr, size } => {
            format!("write {addr} ({} bytes) by t{}", size.bytes(), tid.0)
        }
        Event::Acquire { tid, lock } => format!("acquire lock {} by t{}", lock.0, tid.0),
        Event::Release { tid, lock } => format!("release lock {} by t{}", lock.0, tid.0),
        Event::Fork { parent, child } => format!("fork t{} by t{}", child.0, parent.0),
        Event::Join { parent, child } => format!("join t{} by t{}", child.0, parent.0),
        Event::Alloc { tid, addr, size } => {
            format!("alloc {addr} ({size} bytes) by t{}", tid.0)
        }
        Event::Free { tid, addr, size } => {
            format!("free {addr} ({size} bytes) by t{}", tid.0)
        }
        Event::AcquireRead { tid, lock } => {
            format!("rd-acquire lock {} by t{}", lock.0, tid.0)
        }
        Event::ReleaseRead { tid, lock } => {
            format!("rd-release lock {} by t{}", lock.0, tid.0)
        }
        Event::CvSignal { tid, cv } => format!("cv-signal cv {} by t{}", cv.0, tid.0),
        Event::CvWait { tid, cv } => format!("cv-wait cv {} by t{}", cv.0, tid.0),
        Event::BarrierArrive { tid, bar } => {
            format!("barrier-arrive bar {} by t{}", bar.0, tid.0)
        }
        Event::BarrierDepart { tid, bar } => {
            format!("barrier-depart bar {} by t{}", bar.0, tid.0)
        }
    }
}

/// Tuning knobs for the online runtime.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeOptions {
    /// Number of detector shards. `1` reproduces the serialized engine.
    pub shards: usize,
    /// Capacity of each thread's private event buffer. `1` disables
    /// batching (every access is dispatched individually — the
    /// serialized-baseline configuration of the scaling bench).
    pub buffer_capacity: usize,
    /// When `true`, the engine journals every event with its sequence
    /// stamp; `take_recorded` then reconstructs the observed
    /// serialization as a [`Trace`]. Building the engine with a
    /// supervisor forces this on — the journal is what delta replay
    /// rolls a respawned shard forward from.
    pub record: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            shards: 1,
            buffer_capacity: 256,
            record: false,
        }
    }
}

/// Respawn budget of the self-healing supervisor: a shard is respawned
/// after a detector panic at most `max_respawns` times per sliding
/// `window` of sequence stamps; the next panic inside the window falls
/// back to permanent quarantine. A correlated fault (an input that
/// deterministically kills the detector, which delta replay would
/// re-trigger forever) therefore degrades exactly like the unsupervised
/// engine, just `max_respawns` panics later.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorPolicy {
    /// Maximum respawns tolerated inside one window before the shard is
    /// permanently quarantined.
    pub max_respawns: usize,
    /// Width of the sliding respawn window, in sequence stamps.
    pub window: u64,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_respawns: 3,
            window: 100_000,
        }
    }
}

/// Builds a replacement detector for the given shard index.
pub(crate) type DetectorFactory = Arc<dyn Fn(usize) -> Box<dyn Detector + Send> + Send + Sync>;

struct Supervisor {
    factory: DetectorFactory,
    policy: SupervisorPolicy,
}

/// A shard-local copy of the detector's last snapshot plus the journal
/// positions it corresponds to: delta replay restores the snapshot and
/// replays `journal[journal_pos..]` merged with `sync[sync_pos..]`.
struct ShardCheckpoint {
    bytes: Vec<u8>,
    journal_pos: usize,
    sync_pos: usize,
}

/// One thread's private event buffer: a lock-free bounded queue plus a
/// flush lock that serializes drainers (the owner on overflow/sync, the
/// parent at join, the engine at finish).
pub(crate) struct ThreadBuf {
    queue: ArrayQueue<Event>,
    flush: Mutex<()>,
}

impl ThreadBuf {
    fn new(capacity: usize) -> Self {
        ThreadBuf {
            queue: ArrayQueue::new(capacity.max(1)),
            flush: Mutex::new(()),
        }
    }
}

struct ShardState {
    /// `None` once the shard is quarantined: its detector panicked, was
    /// dropped, and the shard only counts dropped events from then on.
    det: Option<Box<dyn Detector + Send>>,
    /// `(stamp, event)` pairs, appended in stamp order; only populated
    /// when recording. Quarantined shards keep journaling, so the
    /// recorded serialization stays exact.
    journal: Vec<(u64, Event)>,
    /// The panic that quarantined this shard, if any.
    failure: Option<ShardFailure>,
    /// Access events routed here but never processed (panicked mid-batch
    /// or arrived after quarantine). Sync broadcasts are not counted:
    /// healthy shards still process them.
    dropped: u64,
    /// The detector's last snapshot, refreshed by [`Engine::capture`];
    /// delta replay rolls a respawned detector forward from here.
    checkpoint: Option<ShardCheckpoint>,
    /// Stamps of recent supervisor respawns, pruned to the policy window.
    respawns: Vec<u64>,
    /// Access events this shard's detector actually *processed* since
    /// the last finish/restore. Strictly disjoint from `dropped`: an
    /// event moves from `routed` to `dropped` the moment it is counted
    /// as never-analyzed, so a failed shard's forfeited coverage is
    /// exactly `routed + dropped` with no event counted twice. If the
    /// shard dies permanently, `routed` is reported as `events_lost`.
    routed: u64,
    /// `events_lost` inherited from a restored checkpoint (events a
    /// previous incarnation of this shard had already lost).
    lost_base: u64,
}

impl ShardState {
    /// Quarantines the shard after a panic: records the failure (payload
    /// text, payload type, and the event being processed when known) and
    /// drops the (possibly corrupt) detector. The drop itself is
    /// contained too — a detector that panics again in `Drop` must not
    /// take the engine down with it.
    #[cold]
    fn quarantine(
        &mut self,
        shard: usize,
        event_seq: u64,
        payload: Box<dyn std::any::Any + Send>,
        last_event: Option<&Event>,
    ) {
        let (msg, payload_type) = panic_message(payload.as_ref());
        let det = self.det.take();
        let _ = catch_unwind(AssertUnwindSafe(move || drop(det)));
        self.failure = Some(ShardFailure {
            shard,
            event_seq,
            payload: msg,
            payload_type: payload_type.to_string(),
            last_event: last_event.map(describe_event),
        });
    }
}

/// Where a detector panic happened: the shard, the stamped part being
/// fed, and how far into it the detector got. `count_drops` is false for
/// sync broadcasts — healthy shards still process those, so the logical
/// event is not lost from the run.
struct PanicSite<'a> {
    shard: usize,
    stamp: u64,
    part: &'a [Event],
    processed: usize,
    count_drops: bool,
}

/// Region size of the fallback router for addresses outside every
/// registered allocation (4 KiB). Offline traces that carry no `Alloc`
/// events are routed at this granularity; a region boundary can then
/// split sharing-adjacent addresses across shards, which is documented
/// as a limitation of offline sharded replay (the online runtime always
/// registers whole objects).
const REGION_BITS: u32 = 12;

/// Routes addresses to shards. Allocated objects are registered as whole
/// ranges (round-robin across shards) so neighbor sharing never crosses
/// a shard boundary; unregistered addresses fall back to hashing their
/// 4 KiB region.
struct Router {
    /// Sorted, disjoint `(base, end, shard)` ranges.
    ranges: Vec<(u64, u64, usize)>,
    next_shard: usize,
    shards: usize,
}

impl Router {
    fn new(shards: usize) -> Self {
        Router {
            ranges: Vec::new(),
            next_shard: 0,
            shards,
        }
    }

    fn route(&self, addr: u64) -> usize {
        if self.shards <= 1 {
            return 0;
        }
        use std::cmp::Ordering as O;
        match self.ranges.binary_search_by(|&(base, end, _)| {
            if end <= addr {
                O::Less
            } else if base > addr {
                O::Greater
            } else {
                O::Equal
            }
        }) {
            Ok(i) => self.ranges[i].2,
            Err(_) => ((addr >> REGION_BITS) as usize) % self.shards,
        }
    }

    fn register(&mut self, base: u64, len: u64) {
        if self.shards <= 1 {
            return;
        }
        let end = base + len.max(1);
        let pos = self.ranges.partition_point(|r| r.0 < base);
        // An allocation overlapping an already-routed range (a preloaded
        // plan bucket, or a re-registration after checkpoint resume)
        // keeps the existing routing: splitting an object across shards
        // would break the one-shard-per-object invariant, and consuming
        // a round-robin slot for a skipped insert would perturb the
        // placement of every later allocation.
        let overlaps = (pos > 0 && self.ranges[pos - 1].1 > base)
            || (pos < self.ranges.len() && self.ranges[pos].0 < end);
        if overlaps {
            return;
        }
        let shard = self.next_shard;
        self.next_shard = (self.next_shard + 1) % self.shards;
        self.ranges.insert(pos, (base, end, shard));
    }

    /// Installs an ahead-of-time routing plan: sorted, disjoint
    /// `(base, end, shard)` ranges that take ownership of their address
    /// ranges before the first event is seen. Later `register` calls for
    /// overlapping allocations defer to the plan. Buckets routed to
    /// shards this engine does not have are dropped (a plan compiled for
    /// a different shard count degrades to plain routing, never panics).
    fn preload(&mut self, routes: &[(u64, u64, usize)]) {
        if self.shards <= 1 {
            return;
        }
        for &(base, end, shard) in routes {
            if shard >= self.shards || end <= base {
                continue;
            }
            let pos = self.ranges.partition_point(|r| r.0 < base);
            let overlaps = (pos > 0 && self.ranges[pos - 1].1 > base)
                || (pos < self.ranges.len() && self.ranges[pos].0 < end);
            if !overlaps {
                self.ranges.insert(pos, (base, end, shard));
            }
        }
    }

    /// Collects into `out` every shard owning any byte of
    /// `[base, base+len)`: registered ranges overlapping it plus the
    /// region hash of each uncovered 4 KiB region. A `Free` event must
    /// reach all of them — routing it by base address alone would leave
    /// stale shadow state in the other shards, which resurfaces as
    /// phantom races when the address range is reused.
    fn routes_for_range(&self, base: u64, len: u64, out: &mut Vec<usize>) {
        out.clear();
        if self.shards <= 1 {
            out.push(0);
            return;
        }
        let end = base.saturating_add(len.max(1));
        let mut cursor = base;
        let start = self.ranges.partition_point(|r| r.1 <= base);
        for &(rb, re, shard) in &self.ranges[start..] {
            if rb >= end || out.len() == self.shards {
                break;
            }
            // Hash-routed gap before this registered range.
            while cursor < rb.min(end) && out.len() < self.shards {
                let s = ((cursor >> REGION_BITS) as usize) % self.shards;
                if !out.contains(&s) {
                    out.push(s);
                }
                cursor = ((cursor >> REGION_BITS) + 1) << REGION_BITS;
            }
            if !out.contains(&shard) {
                out.push(shard);
            }
            cursor = cursor.max(re);
        }
        while cursor < end && out.len() < self.shards {
            let s = ((cursor >> REGION_BITS) as usize) % self.shards;
            if !out.contains(&s) {
                out.push(s);
            }
            cursor = ((cursor >> REGION_BITS) + 1) << REGION_BITS;
        }
    }
}

/// A point-in-time capture of the whole engine: detector snapshots plus
/// the routing and counter state needed to continue the run elsewhere.
/// Produced by [`Engine::capture`], consumed by [`Engine::restore`]; the
/// checkpoint codec persists it as the `DGCP` container.
pub(crate) struct EngineState {
    pub(crate) seq: u64,
    pub(crate) emitted: u64,
    pub(crate) pruned: u64,
    pub(crate) router_next_shard: usize,
    pub(crate) router_ranges: Vec<(u64, u64, usize)>,
    pub(crate) shards: Vec<ShardCapture>,
}

/// One shard's slice of an [`EngineState`]: its detector snapshot (or
/// its failure, for a permanently quarantined shard) plus the drop/loss
/// counters accumulated so far.
pub(crate) struct ShardCapture {
    pub(crate) snapshot: Option<Vec<u8>>,
    pub(crate) failure: Option<ShardFailure>,
    pub(crate) dropped: u64,
    pub(crate) lost: u64,
}

/// The sharded, batched detection engine. See the module docs for the
/// design and its ordering rules.
pub(crate) struct Engine {
    shards: Vec<Mutex<ShardState>>,
    /// Global sequence stamp; allocated under shard locks so per-shard
    /// feed order equals stamp order.
    seq: AtomicU64,
    /// Exact count of logical events emitted (broadcasts count once).
    emitted: AtomicU64,
    record: bool,
    capacity: usize,
    router: RwLock<Router>,
    /// Per-tid buffer registry, indexed by `Tid::index()`.
    bufs: RwLock<Vec<Option<Arc<ThreadBuf>>>>,
    /// Warm-start prune predicate: accesses it covers are dropped before
    /// buffering/dispatch (and before the journal — a recorded trace
    /// excludes pruned accesses). Empty by default.
    prune: PruneSet,
    /// Accesses dropped by the prune predicate.
    pruned: AtomicU64,
    /// `(stamp, event)` for every broadcast sync event, in stamp order;
    /// only populated when recording. Kept engine-global (not per shard)
    /// so a respawned shard can merge it with its own journal without
    /// duplicating every broadcast N times.
    sync_journal: Mutex<Vec<(u64, Event)>>,
    /// Present when the engine self-heals panicked shards.
    supervisor: Option<Supervisor>,
}

impl Engine {
    pub(crate) fn new(detectors: Vec<Box<dyn Detector + Send>>, opts: RuntimeOptions) -> Self {
        Self::build(detectors, opts, PruneSet::empty(), None)
    }

    pub(crate) fn with_prune(
        detectors: Vec<Box<dyn Detector + Send>>,
        opts: RuntimeOptions,
        prune: PruneSet,
    ) -> Self {
        Self::build(detectors, opts, prune, None)
    }

    /// Builds a self-healing engine: on a shard panic the supervisor
    /// spawns `factory(shard)`, rolls it forward from the last checkpoint
    /// plus the journal delta, and re-feeds the offending batch, within
    /// the respawn budget of `policy`.
    pub(crate) fn with_supervisor(
        detectors: Vec<Box<dyn Detector + Send>>,
        opts: RuntimeOptions,
        prune: PruneSet,
        factory: DetectorFactory,
        policy: SupervisorPolicy,
    ) -> Self {
        Self::build(detectors, opts, prune, Some(Supervisor { factory, policy }))
    }

    fn build(
        detectors: Vec<Box<dyn Detector + Send>>,
        opts: RuntimeOptions,
        prune: PruneSet,
        supervisor: Option<Supervisor>,
    ) -> Self {
        assert!(!detectors.is_empty(), "engine needs at least one shard");
        let shards = detectors
            .into_iter()
            .map(|det| {
                Mutex::new(ShardState {
                    det: Some(det),
                    journal: Vec::new(),
                    failure: None,
                    dropped: 0,
                    checkpoint: None,
                    respawns: Vec::new(),
                    routed: 0,
                    lost_base: 0,
                })
            })
            .collect::<Vec<_>>();
        let n = shards.len();
        Engine {
            shards,
            seq: AtomicU64::new(0),
            emitted: AtomicU64::new(0),
            // Supervision requires the journal: it is the delta replay
            // source for respawned shards.
            record: opts.record || supervisor.is_some(),
            capacity: opts.buffer_capacity,
            router: RwLock::new(Router::new(n)),
            bufs: RwLock::new(Vec::new()),
            prune,
            pruned: AtomicU64::new(0),
            sync_journal: Mutex::new(Vec::new()),
            supervisor,
        }
    }

    /// Whether the warm-start predicate drops this event.
    fn prunes(&self, ev: &Event) -> bool {
        match ev.access() {
            Some((addr, size, _)) => self.prune.prunes(addr, size.bytes()),
            None => false,
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The buffer of `tid`, creating it on first use.
    pub(crate) fn buffer_for(&self, tid: Tid) -> Arc<ThreadBuf> {
        let idx = tid.index();
        {
            let bufs = self.bufs.read();
            if let Some(Some(buf)) = bufs.get(idx) {
                return Arc::clone(buf);
            }
        }
        let mut bufs = self.bufs.write();
        if bufs.len() <= idx {
            bufs.resize_with(idx + 1, || None);
        }
        Arc::clone(bufs[idx].get_or_insert_with(|| Arc::new(ThreadBuf::new(self.capacity))))
    }

    fn get_buf(&self, tid: Tid) -> Option<Arc<ThreadBuf>> {
        self.bufs.read().get(tid.index()).cloned().flatten()
    }

    /// Lock-free fast path: appends an access to `buf`, flushing first
    /// when the buffer is full. Pruned accesses are dropped here, before
    /// they ever occupy buffer space.
    pub(crate) fn push(&self, buf: &ThreadBuf, ev: Event) {
        if !self.prune.is_empty() && self.prunes(&ev) {
            self.pruned.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ev = ev;
        loop {
            match buf.queue.push(ev) {
                Ok(()) => return,
                Err(back) => {
                    self.flush_buf(buf);
                    ev = back;
                }
            }
        }
    }

    /// Drains `buf` and dispatches the drained batch to the shards.
    ///
    /// The flush lock serializes drainers so a batch is always a
    /// program-order prefix of the owner's pending events.
    pub(crate) fn flush_buf(&self, buf: &ThreadBuf) {
        let _g = buf.flush.lock();
        let mut batch = Vec::with_capacity(buf.queue.len());
        while let Some(ev) = buf.queue.pop() {
            batch.push(ev);
        }
        if !batch.is_empty() {
            self.dispatch(batch);
        }
    }

    /// Flushes every registered thread buffer.
    pub(crate) fn flush_all(&self) {
        let bufs: Vec<Arc<ThreadBuf>> = self.bufs.read().iter().flatten().cloned().collect();
        for buf in bufs {
            self.flush_buf(&buf);
        }
    }

    /// Flushes `tid`'s buffer if it exists (used by the join protocol and
    /// offline replay, where a tid may have no buffer).
    pub(crate) fn flush_tid(&self, tid: Tid) {
        if let Some(buf) = self.get_buf(tid) {
            self.flush_buf(&buf);
        }
    }

    /// Routes a batch of access/alloc/free events to the shards.
    ///
    /// Each per-shard part receives one sequence stamp, taken while the
    /// shard lock is held; events within a part keep their program order.
    pub(crate) fn dispatch(&self, mut batch: Vec<Event>) {
        // Offline replay feeds dispatch directly (bypassing push), so the
        // prune predicate is applied here too; online batches were
        // already filtered at push time and pass through unchanged.
        if !self.prune.is_empty() {
            let before = batch.len();
            batch.retain(|ev| !self.prunes(ev));
            let dropped = (before - batch.len()) as u64;
            if dropped > 0 {
                self.pruned.fetch_add(dropped, Ordering::Relaxed);
            }
            if batch.is_empty() {
                return;
            }
        }
        let n = batch.len() as u64;
        if self.shards.len() == 1 {
            let mut shard = self.shards[0].lock();
            let stamp = self.seq.fetch_add(1, Ordering::Relaxed);
            self.feed(&mut shard, 0, stamp, &batch);
            if self.record {
                shard
                    .journal
                    .extend(batch.into_iter().map(|ev| (stamp, ev)));
            }
        } else {
            let mut parts: Vec<Vec<Event>> = vec![Vec::new(); self.shards.len()];
            {
                let router = self.router.read();
                let mut free_targets: Vec<usize> = Vec::new();
                for ev in batch {
                    if let Event::Free { addr, size, .. } = ev {
                        // Delivered to every owning shard; a shard
                        // holding no cells in the range clears nothing.
                        router.routes_for_range(addr.0, size, &mut free_targets);
                        for &s in &free_targets {
                            parts[s].push(ev);
                        }
                    } else {
                        parts[router.route(route_addr(&ev))].push(ev);
                    }
                }
            }
            for (i, part) in parts.into_iter().enumerate() {
                if part.is_empty() {
                    continue;
                }
                let mut shard = self.shards[i].lock();
                let stamp = self.seq.fetch_add(1, Ordering::Relaxed);
                self.feed(&mut shard, i, stamp, &part);
                if self.record {
                    shard.journal.extend(part.into_iter().map(|ev| (stamp, ev)));
                }
            }
        }
        self.emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Feeds one stamped part to a shard, containing panics. The
    /// `catch_unwind` is per *batch*, not per event, so the clean-path
    /// cost is one landing pad per dispatch, off the per-event hot path.
    /// A panicking detector is handed to [`Engine::recover`], which
    /// either self-heals the shard (supervised engines) or quarantines
    /// it and counts the unprocessed remainder of the part — including
    /// the event that panicked — as dropped.
    ///
    /// Note the journal append in `dispatch` happens *after* this
    /// returns, so during recovery the journal holds exactly the events
    /// fed before this part — the delta replay source — and `part`
    /// itself is re-fed explicitly.
    fn feed(&self, st: &mut ShardState, shard: usize, stamp: u64, part: &[Event]) {
        let Some(det) = st.det.as_mut() else {
            // Never analyzed: counted as `dropped` only — `routed` holds
            // analyzed events, so the two stay disjoint (an event routed
            // to a quarantined shard must not surface in both `dropped`
            // and `events_lost`).
            st.dropped += part.len() as u64;
            return;
        };
        st.routed += part.len() as u64;
        let mut processed = 0usize;
        let result = catch_unwind(AssertUnwindSafe(|| {
            for ev in part {
                det.on_event(ev);
                processed += 1;
            }
        }));
        if let Err(payload) = result {
            self.recover(
                st,
                PanicSite {
                    shard,
                    stamp,
                    part,
                    processed,
                    count_drops: true,
                },
                payload,
            );
        }
    }

    /// Handles a detector panic: without a supervisor (or once the
    /// respawn budget is spent) the shard is permanently quarantined;
    /// otherwise a replacement detector is spawned, restored from the
    /// last checkpoint, rolled forward through the journal delta (shard
    /// journal stamp-merged with the sync journal), and re-fed the
    /// panicking part. A replacement that panics again burns another
    /// respawn from the same budget; a replay that fails structurally
    /// (restore error) quarantines immediately — the checkpoint is the
    /// only rollback point, so there is nothing further back to try.
    #[cold]
    fn recover(
        &self,
        st: &mut ShardState,
        site: PanicSite<'_>,
        mut payload: Box<dyn std::any::Any + Send>,
    ) {
        let mut processed = site.processed;
        loop {
            let offending = site.part.get(processed);
            let Some(sup) = self.supervisor.as_ref() else {
                if site.count_drops {
                    // The unprocessed remainder was counted as routed
                    // (analyzed) up front; reclassify it as dropped so
                    // `dropped` and `events_lost` stay disjoint.
                    let rem = (site.part.len() - processed) as u64;
                    st.dropped += rem;
                    st.routed -= rem;
                }
                st.quarantine(site.shard, site.stamp, payload, offending);
                return;
            };
            st.respawns.retain(|&s| s + sup.policy.window > site.stamp);
            if st.respawns.len() >= sup.policy.max_respawns {
                if site.count_drops {
                    let rem = (site.part.len() - processed) as u64;
                    st.dropped += rem;
                    st.routed -= rem;
                }
                st.quarantine(site.shard, site.stamp, payload, offending);
                return;
            }
            st.respawns.push(site.stamp);
            let mut det = (sup.factory)(site.shard);
            let journal = &st.journal;
            let ckpt = st.checkpoint.as_ref();
            let mut done = 0usize;
            let replay = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
                let (jpos, spos) = match ckpt {
                    Some(c) => {
                        det.restore(&c.bytes)?;
                        (c.journal_pos.min(journal.len()), c.sync_pos)
                    }
                    None => (0, 0),
                };
                {
                    // Lock order: shard lock (held by the caller) →
                    // sync-journal lock, same as `broadcast`.
                    let sync = self.sync_journal.lock();
                    let mut j = journal[jpos..].iter().peekable();
                    let mut s = sync[spos.min(sync.len())..].iter().peekable();
                    loop {
                        let take_sync = match (j.peek(), s.peek()) {
                            (None, None) => break,
                            (Some(_), None) => false,
                            (None, Some(_)) => true,
                            (Some(&&(js, _)), Some(&&(ss, _))) => ss < js,
                        };
                        let (_, ev) = if take_sync {
                            s.next().expect("peeked")
                        } else {
                            j.next().expect("peeked")
                        };
                        det.on_event(ev);
                    }
                }
                for ev in site.part {
                    det.on_event(ev);
                    done += 1;
                }
                Ok(())
            }));
            match replay {
                Ok(Ok(())) => {
                    // Healed: the replacement holds exactly the state the
                    // dead detector would have had after this part.
                    st.det = Some(det);
                    return;
                }
                Ok(Err(e)) => {
                    if site.count_drops {
                        // The whole part is unanalyzed relative to the
                        // rollback point; reclassify it out of `routed`.
                        let n = site.part.len() as u64;
                        st.dropped += n;
                        st.routed -= n;
                    }
                    st.quarantine(
                        site.shard,
                        site.stamp,
                        Box::new(format!("respawn failed: {e}")),
                        offending,
                    );
                    return;
                }
                Err(p) => {
                    payload = p;
                    processed = done;
                }
            }
        }
    }

    /// Emits a sync event as `tid`: flushes `tid`'s buffer (rule 1 of the
    /// module docs), then broadcasts the event to every shard.
    pub(crate) fn emit_sync(&self, tid: Tid, ev: Event) {
        self.flush_tid(tid);
        self.broadcast(ev);
    }

    /// Stamps a sync event once (holding every shard lock) and feeds it
    /// to all shards, keeping their happens-before states identical.
    /// When recording, the event is appended to the sync journal before
    /// the shard locks are released (see the module docs' lock order).
    fn broadcast(&self, ev: Event) {
        let mut guards: Vec<MutexGuard<'_, ShardState>> =
            self.shards.iter().map(|s| s.lock()).collect();
        let stamp = self.seq.fetch_add(1, Ordering::Relaxed);
        for (i, g) in guards.iter_mut().enumerate() {
            // Quarantined shards are skipped without counting a drop:
            // the healthy shards still process the sync event, so the
            // logical event is not lost from the run.
            let Some(det) = g.det.as_mut() else { continue };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| det.on_event(&ev))) {
                self.recover(
                    &mut *g,
                    PanicSite {
                        shard: i,
                        stamp,
                        part: std::slice::from_ref(&ev),
                        processed: 0,
                        count_drops: false,
                    },
                    payload,
                );
            }
        }
        if self.record {
            self.sync_journal.lock().push((stamp, ev));
        }
        self.emitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers an allocated object's (padded) range so all its bytes —
    /// and thus all its sharing-adjacent neighbors — route to one shard.
    pub(crate) fn register_range(&self, base: u64, len: u64) {
        self.router.write().register(base, len);
    }

    /// Installs an ahead-of-time shard routing plan (see
    /// [`dgrace_trace::RoutingPlan::compile`]). Call before feeding
    /// events; allocations overlapping a plan bucket keep the planned
    /// shard instead of drawing a round-robin slot.
    pub(crate) fn preload_routes(&self, routes: &[(u64, u64, usize)]) {
        self.router.write().preload(routes);
    }

    /// Emits an allocation event: flushes the allocating thread's buffer,
    /// then dispatches the event to the object's shard immediately, so
    /// every shard-feed (and the journal) shows the `Alloc` before any
    /// access to the object.
    pub(crate) fn emit_alloc(&self, tid: Tid, ev: Event) {
        self.flush_tid(tid);
        self.dispatch(vec![ev]);
    }

    // ---- parallel-pipeline support (see `crate::pipeline`) ------------

    /// Whether the warm-start prune predicate drops this event. The
    /// pipeline producer prunes before routing, exactly like `dispatch`.
    pub(crate) fn prunes_event(&self, ev: &Event) -> bool {
        !self.prune.is_empty() && self.prunes(ev)
    }

    /// Allocates one sequence stamp. The pipeline producer stamps every
    /// logical event; a sync event reuses one stamp across all shard
    /// lanes, so per-shard journals stay globally ordered by stamp.
    pub(crate) fn alloc_stamp(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Records `n` logical events as emitted (pipeline producer side).
    pub(crate) fn note_emitted(&self, n: u64) {
        self.emitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` accesses dropped by the prune predicate.
    pub(crate) fn note_pruned(&self, n: u64) {
        self.pruned.fetch_add(n, Ordering::Relaxed);
    }

    /// Collects the routing targets of one access/alloc/free event into
    /// `out` (cleared first). `Free` fans out to every owning shard,
    /// everything else routes to exactly one.
    pub(crate) fn route_targets(&self, ev: &Event, out: &mut Vec<usize>) {
        let router = self.router.read();
        if let Event::Free { addr, size, .. } = *ev {
            router.routes_for_range(addr.0, size, out);
        } else {
            out.clear();
            out.push(router.route(route_addr(ev)));
        }
    }

    /// Feeds one shard a stamped segment of its per-shard event stream:
    /// its routed accesses interleaved with *every* sync event, in trace
    /// order. This is the worker half of the ring pipeline — the shard
    /// lock is taken once per segment, sync events are applied inline
    /// (epoch-batched broadcast: no cross-shard locking), and access
    /// runs are fed as batches through the same panic-containing
    /// [`feed`](Engine::feed) path as funnel dispatch.
    ///
    /// When journaling (supervision), sync events are appended to the
    /// *shard* journal rather than the engine-global sync journal: each
    /// lane carries its own copy, so a heal replays its own journal
    /// suffix in stamp order (merged with the — empty — sync journal)
    /// and reconstructs exactly the per-shard sequence. The journal
    /// append happens after the detector processed the entry, matching
    /// `dispatch`'s delta-replay invariant.
    pub(crate) fn feed_segment(&self, shard: usize, entries: &[(u64, Event)]) {
        let mut st = self.shards[shard].lock();
        let mut scratch: Vec<Event> = Vec::new();
        let mut i = 0;
        while i < entries.len() {
            let (stamp, ev) = entries[i];
            if ev.is_sync() {
                if let Some(det) = st.det.as_mut() {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| det.on_event(&ev))) {
                        self.recover(
                            &mut st,
                            PanicSite {
                                shard,
                                stamp,
                                part: std::slice::from_ref(&ev),
                                processed: 0,
                                count_drops: false,
                            },
                            payload,
                        );
                    }
                }
                if self.record {
                    st.journal.push((stamp, ev));
                }
                i += 1;
            } else {
                let start = i;
                while i < entries.len() && !entries[i].1.is_sync() {
                    i += 1;
                }
                scratch.clear();
                scratch.extend(entries[start..i].iter().map(|&(_, e)| e));
                self.feed(&mut st, shard, stamp, &scratch);
                if self.record {
                    st.journal.extend_from_slice(&entries[start..i]);
                }
            }
        }
    }

    /// Reads each healthy shard's live race accumulator past its
    /// watermark, returning the new races and advancing the watermarks.
    /// Purely observational: the accumulators are not drained, so
    /// `finish` and `capture` are unaffected. `watermarks` is resized to
    /// the shard count on first use.
    pub(crate) fn new_races(
        &self,
        watermarks: &mut Vec<usize>,
    ) -> Vec<dgrace_detectors::RaceReport> {
        watermarks.resize(self.shards.len(), 0);
        let mut out = Vec::new();
        for (st, mark) in self.shards.iter().zip(watermarks.iter_mut()) {
            let st = st.lock();
            let Some(det) = st.det.as_ref() else { continue };
            let races = det.races_so_far();
            if races.len() > *mark {
                out.extend_from_slice(&races[*mark..]);
                *mark = races.len();
            } else {
                // finish()/restore reset the accumulator; resynchronize.
                *mark = races.len();
            }
        }
        out
    }

    /// Captures the engine's complete state: per-shard detector
    /// snapshots (refreshing each shard's in-memory checkpoint so later
    /// delta replays start here), the router, and the counters.
    ///
    /// The caller must be quiescent — no thread concurrently emitting
    /// events — which holds for offline replay (single-threaded) and for
    /// `finish`-time captures. Shards that do not support snapshots
    /// capture `None` and can only be resumed as failures.
    pub(crate) fn capture(&self) -> EngineState {
        self.flush_all();
        let mut guards: Vec<MutexGuard<'_, ShardState>> =
            self.shards.iter().map(|s| s.lock()).collect();
        let sync_pos = self.sync_journal.lock().len();
        let mut shards = Vec::with_capacity(guards.len());
        for st in guards.iter_mut() {
            let snapshot = st.det.as_ref().and_then(|d| d.snapshot());
            if let Some(bytes) = &snapshot {
                st.checkpoint = Some(ShardCheckpoint {
                    bytes: bytes.clone(),
                    journal_pos: st.journal.len(),
                    sync_pos,
                });
            }
            let lost = st.lost_base + if st.failure.is_some() { st.routed } else { 0 };
            shards.push(ShardCapture {
                snapshot,
                failure: st.failure.clone(),
                dropped: st.dropped,
                lost,
            });
        }
        let router = self.router.read();
        EngineState {
            seq: self.seq.load(Ordering::Relaxed),
            emitted: self.emitted.load(Ordering::Relaxed),
            pruned: self.pruned.load(Ordering::Relaxed),
            router_next_shard: router.next_shard,
            router_ranges: router.ranges.clone(),
            shards,
        }
    }

    /// Restores a [`capture`](Engine::capture)d state into this engine,
    /// which must be freshly built with the same shard count and detector
    /// configuration. Quarantined shards stay quarantined (their failure
    /// and loss counters carry over); healthy shards restore their
    /// detector snapshots and become the new delta-replay baseline.
    pub(crate) fn restore(&self, state: &EngineState) -> Result<(), String> {
        if state.shards.len() != self.shards.len() {
            return Err(format!(
                "checkpoint has {} shards, engine has {}",
                state.shards.len(),
                self.shards.len()
            ));
        }
        self.seq.store(state.seq, Ordering::Relaxed);
        self.emitted.store(state.emitted, Ordering::Relaxed);
        self.pruned.store(state.pruned, Ordering::Relaxed);
        {
            let mut router = self.router.write();
            router.next_shard = state.router_next_shard;
            router.ranges = state.router_ranges.clone();
        }
        for (i, (s, cap)) in self.shards.iter().zip(&state.shards).enumerate() {
            let mut st = s.lock();
            match (&cap.snapshot, &cap.failure) {
                (Some(bytes), _) => {
                    let det = st
                        .det
                        .as_mut()
                        .ok_or_else(|| format!("shard {i}: engine has no detector"))?;
                    det.restore(bytes).map_err(|e| format!("shard {i}: {e}"))?;
                    // The restored snapshot is the shard's rollback
                    // point; the fresh engine's journals are empty, so
                    // the delta starts at position zero.
                    st.checkpoint = Some(ShardCheckpoint {
                        bytes: bytes.clone(),
                        journal_pos: 0,
                        sync_pos: 0,
                    });
                }
                (None, Some(_)) => {
                    let det = st.det.take();
                    let _ = catch_unwind(AssertUnwindSafe(move || drop(det)));
                }
                (None, None) => {
                    return Err(format!("shard {i}: checkpoint carries no snapshot"));
                }
            }
            st.failure = cap.failure.clone();
            st.dropped = cap.dropped;
            st.lost_base = cap.lost;
            st.routed = 0;
            st.journal.clear();
            st.respawns.clear();
        }
        Ok(())
    }

    /// Flushes all buffers, finishes every shard, and merges the healthy
    /// shards' reports. `stats.events` of the merged report is the exact
    /// emitted count.
    ///
    /// Quarantined shards contribute a [`ShardFailure`], their
    /// dropped-event counts, and `events_lost` — the accesses the dead
    /// shard had *analyzed* before it failed (including events a
    /// pre-resume incarnation had analyzed), whose results die with it —
    /// instead of a report. `events_lost` and `dropped` are disjoint:
    /// their sum is the shard's total forfeited coverage, and no event
    /// is counted in both. The merged report is then *degraded* — its
    /// race set is exact for the healthy shards' addresses. A shard
    /// whose `finish` itself panics is quarantined the same way. With
    /// zero healthy shards the report carries only the failures and
    /// counters; it never hangs or poisons a lock.
    pub(crate) fn finish(&self) -> Report {
        self.flush_all();
        let emitted = self.emitted.swap(0, Ordering::Relaxed);
        let pruned = self.pruned.swap(0, Ordering::Relaxed);
        let mut reports: Vec<Report> = Vec::new();
        let mut failures: Vec<ShardFailure> = Vec::new();
        let mut dropped = 0u64;
        let mut lost = 0u64;
        for (i, s) in self.shards.iter().enumerate() {
            let mut st = s.lock();
            dropped += std::mem::take(&mut st.dropped);
            let routed = std::mem::take(&mut st.routed);
            let lost_base = std::mem::take(&mut st.lost_base);
            st.checkpoint = None;
            st.respawns.clear();
            if let Some(f) = st.failure.take() {
                failures.push(f);
                lost += lost_base + routed;
                continue;
            }
            let Some(det) = st.det.as_mut() else { continue };
            match catch_unwind(AssertUnwindSafe(|| det.finish())) {
                Ok(rep) => reports.push(rep),
                Err(payload) => {
                    let stamp = self.seq.load(Ordering::Relaxed);
                    st.quarantine(i, stamp, payload, None);
                    failures.extend(st.failure.take());
                    lost += lost_base + routed;
                }
            }
        }
        let healthy = reports.len();
        let mut rep = match healthy {
            0 => Report::default(),
            1 if self.shards.len() == 1 => reports.pop().unwrap_or_default(),
            _ => merge_shard_reports(reports),
        };
        if healthy != 1 || self.shards.len() != 1 {
            // Broadcasts reach every shard (the sum over-counts them) and
            // quarantined shards report nothing (the sum under-counts):
            // the atomic counter is the exact logical event count.
            rep.stats.events = emitted;
        }
        // Same contract as the offline `StaticPruneFilter`: `events`
        // counts everything that arrived (including pruned accesses),
        // `accesses` only what was checked.
        rep.stats.events += pruned;
        rep.stats.pruned += pruned;
        rep.stats.dropped += dropped;
        rep.stats.events_lost += lost;
        rep.failures.extend(failures);
        rep.failures.sort_by_key(|f| (f.shard, f.event_seq));
        rep
    }

    /// Reconstructs the recorded serialization (journal mode), or falls
    /// back to the single-shard `Recorder`/`Tee` downcast used by the
    /// pre-sharding API.
    ///
    /// Draining the journals is terminal for supervision: a shard panic
    /// after this call can no longer delta-replay the drained prefix, so
    /// only call it once the run is over.
    pub(crate) fn take_recorded(&self) -> Option<Trace> {
        self.flush_all();
        if self.record {
            let mut entries: Vec<(u64, Event)> = std::mem::take(&mut *self.sync_journal.lock());
            for shard in &self.shards {
                entries.append(&mut shard.lock().journal);
            }
            // Stable: entries sharing a stamp (one dispatched part) keep
            // their program order.
            entries.sort_by_key(|&(stamp, _)| stamp);
            return Some(Trace::from_events(
                entries.into_iter().map(|(_, ev)| ev).collect(),
            ));
        }
        if self.shards.len() != 1 {
            return None;
        }
        let mut shard = self.shards[0].lock();
        let det = shard.det.as_mut()?;
        let any: &mut dyn std::any::Any = &mut **det;
        if let Some(rec) = any.downcast_mut::<Recorder>() {
            return Some(rec.take_trace());
        }
        // Common compositions: Recorder teed with a live detector.
        macro_rules! try_tee {
            ($($live:ty),*) => {$(
                if let Some(tee) = (&mut **det as &mut dyn std::any::Any)
                    .downcast_mut::<Tee<Recorder, $live>>()
                {
                    return Some(tee.first_mut().take_trace());
                }
            )*};
        }
        try_tee!(
            dgrace_core::DynamicGranularity,
            dgrace_detectors::FastTrack,
            dgrace_detectors::Djit
        );
        None
    }
}

/// The routing address of an access/alloc/free event. Sync events never
/// reach `dispatch`, but routing them to shard 0 is still well-defined.
fn route_addr(ev: &Event) -> u64 {
    match *ev {
        Event::Read { addr, .. }
        | Event::Write { addr, .. }
        | Event::Alloc { addr, .. }
        | Event::Free { addr, .. } => addr.0,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::{NopDetector, ShardableDetector};
    use dgrace_trace::{AccessSize, Addr, LockId};

    fn nop_shards(n: usize) -> Vec<Box<dyn Detector + Send>> {
        (0..n)
            .map(|_| Box::new(NopDetector::default()) as Box<dyn Detector + Send>)
            .collect()
    }

    fn w(tid: u32, addr: u64) -> Event {
        Event::Write {
            tid: Tid(tid),
            addr: Addr(addr),
            size: AccessSize::U64,
        }
    }

    #[test]
    fn router_prefers_registered_ranges() {
        let mut r = Router::new(4);
        r.register(0x1000, 0x200);
        r.register(0x2000, 0x200);
        let a = r.route(0x1000);
        assert_eq!(r.route(0x11ff), a, "whole object in one shard");
        let b = r.route(0x2000);
        assert_ne!(a, b, "round-robin assigns distinct shards");
        // Unregistered addresses fall back to region hashing.
        let _ = r.route(0x9999_0000);
    }

    #[test]
    fn preloaded_plan_owns_its_ranges() {
        let mut r = Router::new(4);
        r.preload(&[(0x1000, 0x1800, 2), (0x4000, 0x4100, 0)]);
        assert_eq!(r.route(0x1000), 2);
        assert_eq!(r.route(0x17ff), 2);
        assert_eq!(r.route(0x4000), 0);
        // An allocation overlapping a plan bucket keeps the planned
        // shard and does not consume a round-robin slot...
        r.register(0x1200, 0x100);
        assert_eq!(r.route(0x1200), 2);
        // ...so the next fresh allocation still lands on shard 0.
        r.register(0x9000, 0x100);
        assert_eq!(r.route(0x9000), 0);
        // Buckets for out-of-range shards or empty spans are dropped.
        let mut r = Router::new(2);
        r.preload(&[(0x1000, 0x2000, 7), (0x3000, 0x3000, 0)]);
        assert!(r.ranges.is_empty());
        // Single-shard routers ignore plans entirely.
        let mut r = Router::new(1);
        r.preload(&[(0x1000, 0x2000, 0)]);
        assert!(r.ranges.is_empty());
        assert_eq!(r.route(0x1500), 0);
    }

    #[test]
    fn overlapping_registration_is_skipped_without_consuming_a_slot() {
        let mut r = Router::new(4);
        r.register(0x1000, 0x200); // shard 0
        let before = r.ranges.clone();
        // Overlaps from below, inside, and above are all rejected.
        r.register(0x0F00, 0x200);
        r.register(0x1080, 0x10);
        r.register(0x11ff, 0x200);
        assert_eq!(r.ranges, before);
        // The round-robin cursor was untouched: next insert gets shard 1.
        r.register(0x8000, 0x100);
        assert_eq!(r.route(0x8000), 1);
    }

    #[test]
    fn free_spanning_region_boundary_reaches_every_owning_shard() {
        // Unregistered range straddling the 4 KiB region boundary at
        // 0x1000: region 0 hashes to shard 0, region 1 to shard 1.
        let r = Router::new(2);
        let mut out = Vec::new();
        r.routes_for_range(0xFE0, 0x40, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1], "free covers both hash regions");
        // Entirely inside one region: single target.
        r.routes_for_range(0x100, 0x40, &mut out);
        assert_eq!(out, vec![0]);

        // Registered ranges interleaved with hash-routed gaps.
        let mut r = Router::new(4);
        r.register(0x1100, 0x100); // shard 0
        r.register(0x5000, 0x100); // shard 1
        let mut out = Vec::new();
        // Covers the gap before 0x1100 (region 1 → shard 1), the
        // registered object (shard 0), and the gap after it (region 1
        // again, already present).
        r.routes_for_range(0x1000, 0x300, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
        // A free of exactly the registered object hits only its shard.
        r.routes_for_range(0x5000, 0x100, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn overflow_flushes_and_nothing_is_lost() {
        let eng = Engine::new(
            nop_shards(2),
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: true,
            },
        );
        let buf = eng.buffer_for(Tid(0));
        for i in 0..10u64 {
            eng.push(&buf, w(0, 0x1000 + i * 8));
        }
        let trace = eng.take_recorded().expect("recording engine");
        assert_eq!(trace.len(), 10);
        let rep = eng.finish();
        assert_eq!(rep.stats.events, 10);
    }

    #[test]
    fn panicking_shard_is_quarantined_not_fatal() {
        crate::silence_injected_panics();
        // Shard 1 dies at its first event; shard 0 keeps detecting.
        let proto = crate::PanicOnEvent::new(dgrace_detectors::FastTrack::new(), 1, 1);
        let detectors = (0..2).map(|_| proto.new_shard()).collect();
        let eng = Engine::new(
            detectors,
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: true,
            },
        );
        // Region hash routing: 0x0000 → shard 0, 0x1000 → shard 1.
        eng.dispatch(vec![w(0, 0x100)]); // shard 0
        eng.dispatch(vec![w(0, 0x1100), w(0, 0x1108)]); // shard 1: dies at first
        eng.dispatch(vec![w(0, 0x1110)]); // shard 1: dropped post-quarantine
        eng.dispatch(vec![w(1, 0x100)]); // shard 0: races with the first write
                                         // The journal still covers every event, quarantined shard included.
        let trace = eng.take_recorded().expect("recording engine");
        assert_eq!(trace.len(), 5);
        let rep = eng.finish();
        assert!(rep.is_degraded());
        assert_eq!(rep.failures.len(), 1);
        assert_eq!(rep.failures[0].shard, 1);
        assert!(rep.failures[0].payload.contains("fault-injection"));
        assert_eq!(rep.stats.dropped, 3, "panicking event + 1 tail + 1 late");
        assert_eq!(rep.stats.events, 5, "logical event count stays exact");
        assert_eq!(rep.races.len(), 1, "healthy shard's race survives");
        assert_eq!(rep.races[0].addr, Addr(0x100));
    }

    #[test]
    fn all_shards_failing_still_terminates() {
        crate::silence_injected_panics();
        let proto = crate::PanicOnEvent::new(dgrace_detectors::FastTrack::new(), 0, 1);
        let eng = Engine::new(
            vec![proto.new_shard()],
            RuntimeOptions {
                shards: 1,
                buffer_capacity: 4,
                record: false,
            },
        );
        eng.dispatch(vec![w(0, 0x100)]);
        let rep = eng.finish();
        assert_eq!(rep.failures.len(), 1);
        assert!(rep.races.is_empty());
        assert_eq!(rep.stats.events, 1);
        assert_eq!(rep.stats.dropped, 1);
    }

    #[test]
    fn broadcast_panic_quarantines_without_drop_count() {
        crate::silence_injected_panics();
        let proto = crate::PanicOnEvent::new(dgrace_detectors::FastTrack::new(), 1, 1);
        let detectors = (0..2).map(|_| proto.new_shard()).collect();
        let eng = Engine::new(
            detectors,
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: false,
            },
        );
        eng.emit_sync(
            Tid(0),
            Event::Acquire {
                tid: Tid(0),
                lock: LockId(0),
            },
        );
        let rep = eng.finish();
        assert_eq!(rep.failures.len(), 1);
        assert_eq!(
            rep.stats.dropped, 0,
            "healthy shards processed the broadcast; nothing was lost"
        );
        assert_eq!(rep.stats.events, 1);
    }

    #[test]
    fn broadcast_counts_once() {
        let eng = Engine::new(
            nop_shards(4),
            RuntimeOptions {
                shards: 4,
                buffer_capacity: 8,
                record: false,
            },
        );
        eng.emit_sync(
            Tid(0),
            Event::Acquire {
                tid: Tid(0),
                lock: LockId(0),
            },
        );
        let rep = eng.finish();
        assert_eq!(rep.stats.events, 1, "a broadcast is one logical event");
    }

    #[test]
    fn supervisor_respawns_and_preserves_races() {
        crate::silence_injected_panics();
        // Shard 1 dies at its second event. The supervisor respawns it
        // (the replacement takes shard index 2 from the shared counter,
        // so it never re-panics — a transient fault), replays the
        // journal, and re-feeds the killing batch: no event is lost and
        // the race on the faulted shard is still detected.
        let proto = crate::PanicOnEvent::new(dgrace_detectors::FastTrack::new(), 1, 2);
        let detectors = (0..2).map(|_| proto.new_shard()).collect();
        let proto = Mutex::new(proto);
        let factory: DetectorFactory = Arc::new(move |_| proto.lock().new_shard());
        let eng = Engine::with_supervisor(
            detectors,
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: false,
            },
            PruneSet::empty(),
            factory,
            SupervisorPolicy::default(),
        );
        eng.dispatch(vec![w(0, 0x1100)]); // shard 1, survives
        eng.dispatch(vec![w(1, 0x1100)]); // shard 1, panics → heals → races
        eng.dispatch(vec![w(0, 0x100)]); // shard 0
        let rep = eng.finish();
        assert!(!rep.is_degraded(), "healed shard is not a failure");
        assert!(rep.failures.is_empty());
        assert_eq!(rep.stats.dropped, 0, "delta replay recovered every event");
        assert_eq!(rep.stats.events_lost, 0);
        assert_eq!(rep.stats.events, 3);
        assert_eq!(rep.races.len(), 1, "race on the healed shard survives");
        assert_eq!(rep.races[0].addr, Addr(0x1100));
    }

    #[test]
    fn supervisor_gives_up_after_strike_budget() {
        crate::silence_injected_panics();
        // A detector that dies on *every* event: delta replay re-triggers
        // the fault, so the supervisor must hit its respawn budget and
        // fall back to permanent quarantine instead of looping forever.
        struct AlwaysPanic;
        impl Detector for AlwaysPanic {
            fn name(&self) -> String {
                "always-panic".into()
            }
            fn on_event(&mut self, _ev: &Event) {
                panic!("fault-injection: unconditional");
            }
            fn finish(&mut self) -> Report {
                Report::default()
            }
        }
        let factory: DetectorFactory = Arc::new(|_| Box::new(AlwaysPanic));
        let eng = Engine::with_supervisor(
            vec![Box::new(AlwaysPanic)],
            RuntimeOptions {
                shards: 1,
                buffer_capacity: 4,
                record: false,
            },
            PruneSet::empty(),
            factory,
            SupervisorPolicy {
                max_respawns: 2,
                window: 1000,
            },
        );
        eng.dispatch(vec![w(0, 0x100)]);
        let rep = eng.finish();
        assert_eq!(rep.failures.len(), 1, "budget exhausted → quarantine");
        assert_eq!(rep.stats.dropped, 1);
        assert_eq!(
            rep.stats.events_lost, 0,
            "the event was never analyzed: it counts as dropped only"
        );
        let last = rep.failures[0].last_event.as_deref().unwrap_or("");
        assert!(
            last.contains("write 0x100"),
            "offending event captured: {last}"
        );
    }

    #[test]
    fn lost_and_dropped_partition_a_dead_shards_traffic() {
        crate::silence_injected_panics();
        // Shard 1 analyzes one event, dies on its second, and receives
        // one more after quarantine. The dead shard's traffic must be
        // *partitioned* between the two counters — one analyzed-then-
        // lost, two never-analyzed — with no event in both buckets.
        let proto = crate::PanicOnEvent::new(dgrace_detectors::FastTrack::new(), 1, 2);
        let detectors = (0..2).map(|_| proto.new_shard()).collect();
        let eng = Engine::new(
            detectors,
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: false,
            },
        );
        eng.dispatch(vec![w(2, 0x1100)]); // shard 1: analyzed
        eng.dispatch(vec![w(0, 0x1108)]); // shard 1: dies here
        eng.dispatch(vec![w(3, 0x1110)]); // shard 1: post-quarantine
        eng.dispatch(vec![w(1, 0x100)]); // shard 0: healthy
        let rep = eng.finish();
        assert_eq!(rep.stats.events_lost, 1, "one event was analyzed pre-panic");
        assert_eq!(rep.stats.dropped, 2, "killer + post-quarantine arrival");
        assert_eq!(
            rep.stats.events_lost + rep.stats.dropped,
            3,
            "disjoint counters partition the dead shard's three events"
        );
        assert_eq!(rep.stats.events, 4, "emitted count is exact");
        assert_eq!(rep.failures.len(), 1);
        assert_eq!(rep.failures[0].payload_type, "str");
        let last = rep.failures[0].last_event.as_deref().unwrap_or("");
        assert!(
            last.contains("write 0x1108"),
            "failure names the killing event: {last}"
        );
    }

    #[test]
    fn lost_dropped_and_evicted_stay_disjoint_under_budget_pressure() {
        crate::silence_injected_panics();
        // The overlap case from the counter-accounting fix: a shard that
        // is *both* under memory-budget eviction pressure *and* later
        // quarantined must not double-count any event. Shard 1 evicts
        // cells while alive, analyzes 64 accesses, dies on its 65th, and
        // receives 3 more after quarantine; shard 0 stays healthy under
        // the same budget.
        let mut inner = dgrace_detectors::FastTrack::new();
        inner.set_shadow_budget(Some(1024));
        let proto = crate::PanicOnEvent::new(inner, 1, 257);
        let detectors = (0..2).map(|_| proto.new_shard()).collect();
        let eng = Engine::new(
            detectors,
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: false,
            },
        );
        // 256 distinct words inside the 4 KiB region 0x1000..0x2000 (all
        // of which routes to shard 1) force evictions under the 1 KiB
        // budget; mirrored traffic in region 0 keeps shard 0 busy,
        // healthy, and equally budget-pressured.
        for i in 0..256u64 {
            eng.dispatch(vec![w(0, 0x1000 + i * 16)]);
            eng.dispatch(vec![w(0, 0x0100 + i * 8)]);
        }
        eng.dispatch(vec![w(1, 0x1200)]); // shard 1: dies here (257th)
        for i in 0..3u64 {
            eng.dispatch(vec![w(2, 0x1f00 + i * 8)]); // post-quarantine
        }
        let rep = eng.finish();
        assert_eq!(rep.failures.len(), 1, "shard 1 quarantined");
        assert_eq!(
            rep.stats.events_lost, 256,
            "exactly the analyzed-then-lost accesses, none double-counted"
        );
        assert_eq!(rep.stats.dropped, 4, "killer + three post-quarantine");
        assert_eq!(
            rep.stats.events_lost + rep.stats.dropped,
            260,
            "lost + dropped partition the dead shard's 260 events exactly"
        );
        assert_eq!(rep.stats.events, 256 + 256 + 1 + 3);
        assert!(
            rep.stats.evicted > 0,
            "healthy shard still reports its budget evictions"
        );
        // Eviction counts shadow *cells* from live shards' reports only;
        // the dead shard's evictions die with it rather than leaking
        // into the event-loss accounting.
        assert!(rep.budget_degraded);
    }

    #[test]
    fn capture_restore_round_trips_mid_run() {
        let shards = |proto: &dgrace_detectors::FastTrack| -> Vec<Box<dyn Detector + Send>> {
            (0..2).map(|_| proto.new_shard()).collect()
        };
        let opts = RuntimeOptions {
            shards: 2,
            buffer_capacity: 4,
            record: false,
        };
        let proto = dgrace_detectors::FastTrack::new();
        let acq = Event::Acquire {
            tid: Tid(0),
            lock: LockId(0),
        };
        let rel = Event::Release {
            tid: Tid(0),
            lock: LockId(0),
        };

        // Uninterrupted baseline.
        let clean = Engine::new(shards(&proto), opts);
        clean.broadcast(acq);
        clean.dispatch(vec![w(0, 0x100), w(0, 0x1100)]);
        clean.broadcast(rel);
        clean.dispatch(vec![w(1, 0x100), w(1, 0x1100)]);
        let want = clean.finish();
        assert_eq!(want.races.len(), 2, "baseline sanity");

        // Same run split by a capture/restore across two engines.
        let first = Engine::new(shards(&proto), opts);
        first.broadcast(acq);
        first.dispatch(vec![w(0, 0x100), w(0, 0x1100)]);
        let state = first.capture();
        let second = Engine::new(shards(&proto), opts);
        second.restore(&state).expect("restore");
        second.broadcast(rel);
        second.dispatch(vec![w(1, 0x100), w(1, 0x1100)]);
        let got = second.finish();
        assert_eq!(got, want, "capture/restore run equals the clean run");
    }
}
