//! Offline sharded replay: run a recorded [`Trace`] through N detector
//! shards, exactly as the online engine would route a live run.
//!
//! Access events are routed by address (allocation events register their
//! range with the router, so whole objects stay in one shard; addresses
//! outside any allocation fall back to 4 KiB region hashing). Sync
//! events are broadcast to every shard. Consecutive accesses are
//! dispatched in batches, mirroring the online flush behaviour.
//!
//! This is what backs the CLI's `--shards N` flag: the replay is
//! sequential (sharding offline is about validating the partitioned
//! analysis and its merged report, not about speed), and for traces
//! without allocation events a 4 KiB region boundary may split
//! sharing-adjacent addresses across shards — the online runtime never
//! does, because every tracked object is registered wholly with one
//! shard.

use dgrace_detectors::{Report, ShardableDetector};
use dgrace_trace::{Event, PruneSet, Trace};

use crate::engine::{Engine, RuntimeOptions};

/// Replays `trace` through `shards` instances of the prototype detector
/// and returns the merged report. `shards == 1` reproduces a plain
/// serialized replay.
pub fn replay_sharded<D: ShardableDetector + ?Sized>(
    prototype: &D,
    trace: &Trace,
    shards: usize,
) -> Report {
    replay_sharded_pruned(prototype, trace, shards, PruneSet::empty())
}

/// [`replay_sharded`] with a warm-start prune predicate: accesses the
/// ahead-of-time analysis proved race-free are dropped before routing,
/// and surface in the merged report as `stats.pruned`. The prune set
/// must have been compiled for the prototype detector's granularity
/// (see `AnalysisSummary::prune_set`).
pub fn replay_sharded_pruned<D: ShardableDetector + ?Sized>(
    prototype: &D,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
) -> Report {
    let shards = shards.max(1);
    let opts = RuntimeOptions {
        shards,
        buffer_capacity: 1,
        record: false,
    };
    let detectors = (0..shards).map(|_| prototype.new_shard()).collect();
    let engine = Engine::with_prune(detectors, opts, prune);

    let mut pending: Vec<Event> = Vec::new();
    for ev in trace.iter() {
        if ev.is_sync() {
            if !pending.is_empty() {
                engine.dispatch(std::mem::take(&mut pending));
            }
            engine.emit_sync(ev.tid(), *ev);
        } else {
            if let Event::Alloc { addr, size, .. } = *ev {
                engine.register_range(addr.0, size);
            }
            pending.push(*ev);
        }
    }
    if !pending.is_empty() {
        engine.dispatch(pending);
    }
    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_core::DynamicGranularity;
    use dgrace_detectors::{race_signature, DetectorExt, FastTrack};
    use dgrace_trace::{AccessSize, TraceBuilder};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, 0x100u64, AccessSize::U64)
            .write(1u32, 0x100u64, AccessSize::U64)
            .locked(0u32, 0u32, |b| {
                b.write(0u32, 0x5000u64, AccessSize::U64);
            })
            .locked(1u32, 0u32, |b| {
                b.write(1u32, 0x5000u64, AccessSize::U64);
            })
            .join(0u32, 1u32);
        b.build()
    }

    #[test]
    fn sharded_replay_matches_serialized() {
        let trace = racy_trace();
        let serial = FastTrack::new().run(&trace);
        for shards in [1usize, 2, 4, 8] {
            let rep = replay_sharded(&FastTrack::new(), &trace, shards);
            assert_eq!(
                race_signature(&rep),
                race_signature(&serial),
                "shards={shards}"
            );
            assert_eq!(rep.stats.events, trace.len() as u64, "shards={shards}");
        }
    }

    #[test]
    fn sharded_replay_dynamic_detector() {
        let trace = racy_trace();
        let serial = DynamicGranularity::new().run(&trace);
        for shards in [1usize, 3] {
            let rep = replay_sharded(&DynamicGranularity::new(), &trace, shards);
            assert_eq!(
                race_signature(&rep),
                race_signature(&serial),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn pruned_replay_drops_accesses_and_keeps_races() {
        use dgrace_trace::{Addr, AnalysisSummary, ClassifiedRange, LocationClass};
        // Thread-local traffic at 0x9000 plus the racy pair at 0x100.
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, 0x100u64, AccessSize::U64)
            .write(1u32, 0x100u64, AccessSize::U64);
        for i in 0..8u64 {
            b.write(0u32, 0x9000 + i * 8, AccessSize::U64);
        }
        b.join(0u32, 1u32);
        let trace = b.build();
        let summary = AnalysisSummary {
            ranges: vec![ClassifiedRange {
                start: Addr(0x9000),
                len: 64,
                class: LocationClass::ThreadLocal,
            }],
            ..Default::default()
        };
        let prune = summary.prune_set(1, 0);
        let bare = replay_sharded(&FastTrack::new(), &trace, 2);
        for shards in [1usize, 2, 4] {
            let rep = replay_sharded_pruned(&FastTrack::new(), &trace, shards, prune.clone());
            assert_eq!(rep.stats.pruned, 8, "shards={shards}");
            assert_eq!(
                rep.stats.events,
                trace.len() as u64,
                "events still count pruned accesses (shards={shards})"
            );
            assert_eq!(
                race_signature(&rep),
                race_signature(&bare),
                "shards={shards}"
            );
        }
    }
}
