//! Offline sharded replay: run a recorded [`Trace`] through N detector
//! shards, exactly as the online engine would route a live run.
//!
//! Access events are routed by address (allocation events register their
//! range with the router, so whole objects stay in one shard; addresses
//! outside any allocation fall back to 4 KiB region hashing). Sync
//! events are broadcast to every shard. Consecutive accesses are
//! dispatched in batches, mirroring the online flush behaviour.
//!
//! This is what backs the CLI's `--shards N` flag: the replay is
//! sequential (sharding offline is about validating the partitioned
//! analysis and its merged report, not about speed), and for traces
//! without allocation events a 4 KiB region boundary may split
//! sharing-adjacent addresses across shards — the online runtime never
//! does, because every tracked object is registered wholly with one
//! shard.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dgrace_detectors::{Report, ShardableDetector};
use dgrace_trace::{Event, PruneSet, Trace};

use crate::checkpoint::{CheckpointManifest, CHECKPOINT_FILE};
use crate::engine::{DetectorFactory, Engine, RuntimeOptions, SupervisorPolicy};

/// Replays `trace` through `shards` instances of the prototype detector
/// and returns the merged report. `shards == 1` reproduces a plain
/// serialized replay.
pub fn replay_sharded<D: ShardableDetector + ?Sized>(
    prototype: &D,
    trace: &Trace,
    shards: usize,
) -> Report {
    replay_sharded_pruned(prototype, trace, shards, PruneSet::empty())
}

/// [`replay_sharded`] with a warm-start prune predicate: accesses the
/// ahead-of-time analysis proved race-free are dropped before routing,
/// and surface in the merged report as `stats.pruned`. The prune set
/// must have been compiled for the prototype detector's granularity
/// (see `AnalysisSummary::prune_set`).
pub fn replay_sharded_pruned<D: ShardableDetector + ?Sized>(
    prototype: &D,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
) -> Report {
    replay_sharded_planned(prototype, trace, shards, prune, &[])
}

/// [`replay_sharded_pruned`] with an ahead-of-time shard routing plan:
/// `routes` are sorted, disjoint `(base, end, shard)` buckets (see
/// `RoutingPlan::compile`) preloaded into the router before the first
/// event, so the hottest address ranges are balanced across shards
/// instead of placed round-robin by allocation order. Allocations
/// overlapping a plan bucket keep the planned shard. An empty plan is
/// exactly [`replay_sharded_pruned`].
pub fn replay_sharded_planned<D: ShardableDetector + ?Sized>(
    prototype: &D,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
    routes: &[(u64, u64, usize)],
) -> Report {
    let shards = shards.max(1);
    let opts = RuntimeOptions {
        shards,
        buffer_capacity: 1,
        record: false,
    };
    let detectors = (0..shards).map(|_| prototype.new_shard()).collect();
    let engine = Engine::with_prune(detectors, opts, prune);
    engine.preload_routes(routes);

    let mut pending: Vec<Event> = Vec::new();
    for ev in trace.iter() {
        if ev.is_sync() {
            if !pending.is_empty() {
                engine.dispatch(std::mem::take(&mut pending));
            }
            engine.emit_sync(ev.tid(), *ev);
        } else {
            if let Event::Alloc { addr, size, .. } = *ev {
                engine.register_range(addr.0, size);
            }
            pending.push(*ev);
        }
    }
    if !pending.is_empty() {
        engine.dispatch(pending);
    }
    engine.finish()
}

/// How often a checkpointed replay persists a manifest.
#[derive(Clone, Copy, Debug)]
pub enum CheckpointInterval {
    /// Checkpoint after every `n` processed trace events.
    Events(u64),
    /// Checkpoint when `secs` seconds have elapsed since the last one.
    Secs(u64),
}

/// Where and how often a checkpointed replay persists its state.
#[derive(Clone, Debug)]
pub struct CheckpointOptions {
    /// Directory holding the manifest (created if absent); the file
    /// inside it is [`CHECKPOINT_FILE`].
    pub dir: PathBuf,
    /// Checkpoint cadence.
    pub every: CheckpointInterval,
}

/// A failure of checkpointed replay, split by what the caller should do
/// about it: retry I/O, discard the checkpoint, or fix the invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayError {
    /// Filesystem trouble reading or writing checkpoint state.
    Io(String),
    /// The checkpoint decoded but cannot be restored (corrupt or
    /// incomplete snapshot data).
    Corrupt(String),
    /// The checkpoint disagrees with the requested run (different
    /// detector, shard count, or trace).
    Mismatch(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            ReplayError::Corrupt(e) => write!(f, "checkpoint corrupt: {e}"),
            ReplayError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// Tracks checkpoint-write health across a run. A failed manifest write
/// (disk full, I/O error, permissions yanked mid-run) must not abort
/// detection: [`dgrace_trace::write_file_atomic`] guarantees the last
/// good manifest is still intact on disk, so the run continues, warns
/// once, and flags its report as
/// [`dgrace_detectors::Report::checkpointing_degraded`] — the analysis
/// is complete, only crash-resumability regressed to the last
/// checkpoint that did land.
pub(crate) struct CkptHealth {
    degraded: bool,
}

impl CkptHealth {
    pub(crate) fn new() -> Self {
        CkptHealth { degraded: false }
    }

    /// Records the outcome of one manifest write; the first failure is
    /// reported to stderr.
    pub(crate) fn note(&mut self, path: &Path, res: std::io::Result<()>) {
        if let Err(e) = res {
            if !self.degraded {
                eprintln!(
                    "warning: failed to write checkpoint {}: {e}; detection continues \
                     (the last complete checkpoint is retained)",
                    path.display()
                );
            }
            self.degraded = true;
        }
    }

    pub(crate) fn degraded(&self) -> bool {
        self.degraded
    }
}

/// Checks that a manifest matches the requested run (same detector,
/// shard count, and trace) and that its offset is sane. Shared by the
/// funnel path and the ring pipeline so both reject the same mismatches
/// — and therefore accept each other's checkpoints.
pub(crate) fn validate_resume(
    m: &CheckpointManifest,
    det_name: &str,
    shards: usize,
    trace_len: u64,
) -> Result<(), ReplayError> {
    if m.detector != det_name {
        return Err(ReplayError::Mismatch(format!(
            "checkpoint was taken with detector '{}', this run uses '{det_name}'",
            m.detector
        )));
    }
    if m.shard_count() != shards {
        return Err(ReplayError::Mismatch(format!(
            "checkpoint has {} shards, this run uses {shards}",
            m.shard_count()
        )));
    }
    if m.trace_len != trace_len {
        return Err(ReplayError::Mismatch(format!(
            "checkpoint covers a trace of {} events, this trace has {trace_len}",
            m.trace_len
        )));
    }
    if m.trace_offset > trace_len {
        return Err(ReplayError::Corrupt(format!(
            "trace offset {} past the end of the trace ({trace_len})",
            m.trace_offset
        )));
    }
    Ok(())
}

/// [`replay_sharded`] with a self-healing supervisor: a shard whose
/// detector panics is respawned from the prototype, rolled forward
/// through the engine's journals, and re-fed the offending batch, within
/// `policy`'s respawn budget. With a fault-free detector this is
/// behaviorally identical to [`replay_sharded_pruned`] (the journals are
/// recorded but never consulted).
pub fn replay_supervised(
    prototype: Box<dyn ShardableDetector + Send>,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
    policy: SupervisorPolicy,
) -> Report {
    replay_checkpointed(prototype, trace, shards, prune, Some(policy), None, None)
        .expect("supervised replay performs no checkpoint I/O")
}

/// The crash-resumable replay behind `dgrace detect --checkpoint-dir` /
/// `--resume`: optionally supervised ([`SupervisorPolicy`]), optionally
/// persisting a [`CheckpointManifest`] every `ckpt.every` events or
/// seconds, optionally starting from a previously loaded manifest.
///
/// Because detector snapshots are canonical and delta replay is exact, a
/// run interrupted at any point and resumed from its last checkpoint
/// produces a byte-identical race set to an uninterrupted run over the
/// same trace.
pub fn replay_checkpointed(
    prototype: Box<dyn ShardableDetector + Send>,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
    policy: Option<SupervisorPolicy>,
    ckpt: Option<&CheckpointOptions>,
    resume: Option<&CheckpointManifest>,
) -> Result<Report, ReplayError> {
    replay_checkpointed_planned(
        prototype,
        trace,
        shards,
        prune,
        policy,
        ckpt,
        resume,
        &[],
        None,
    )
}

/// [`replay_checkpointed`] with an ahead-of-time routing plan (see
/// [`replay_sharded_planned`]). The plan is preloaded before any resume
/// state is restored; a restored checkpoint overwrites the router
/// wholesale with its captured ranges, which already reflect whatever
/// plan was active when the checkpoint was taken — so an interrupted
/// planned run resumes with the same routing it started with.
///
/// `stop` is a cooperative interruption flag (a SIGINT/SIGTERM handler
/// sets it): when it reads `true`, the replay flushes what it has,
/// writes a final checkpoint (if configured) covering exactly the
/// events processed so far, and returns the *partial* report instead of
/// running to the end. The caller distinguishes a partial report by
/// re-reading the flag.
#[allow(clippy::too_many_arguments)]
pub fn replay_checkpointed_planned(
    prototype: Box<dyn ShardableDetector + Send>,
    trace: &Trace,
    shards: usize,
    prune: PruneSet,
    policy: Option<SupervisorPolicy>,
    ckpt: Option<&CheckpointOptions>,
    resume: Option<&CheckpointManifest>,
    routes: &[(u64, u64, usize)],
    stop: Option<&AtomicBool>,
) -> Result<Report, ReplayError> {
    let shards = shards.max(1);
    let opts = RuntimeOptions {
        shards,
        buffer_capacity: 1,
        record: false,
    };
    let det_name = prototype.name();
    let detectors = (0..shards).map(|_| prototype.new_shard()).collect();
    let engine = match policy {
        Some(p) => {
            // The prototype itself need not be `Sync` (the paged shadow
            // store carries a `Cell` hot-entry cache); a mutex makes the
            // factory shareable across the engine's threads.
            let proto = parking_lot::Mutex::new(prototype);
            let factory: DetectorFactory = Arc::new(move |_| proto.lock().new_shard());
            Engine::with_supervisor(detectors, opts, prune, factory, p)
        }
        None => Engine::with_prune(detectors, opts, prune),
    };
    engine.preload_routes(routes);
    let trace_len = trace.len() as u64;

    let mut start = 0usize;
    if let Some(m) = resume {
        validate_resume(m, &det_name, shards, trace_len)?;
        engine.restore(&m.state).map_err(ReplayError::Corrupt)?;
        start = m.trace_offset as usize;
    }
    if let Some(c) = ckpt {
        std::fs::create_dir_all(&c.dir)
            .map_err(|e| ReplayError::Io(format!("{}: {e}", c.dir.display())))?;
    }

    let mut pending: Vec<Event> = Vec::new();
    let mut since = 0u64;
    let mut last = Instant::now();
    let mut health = CkptHealth::new();
    for (idx, ev) in trace.iter().enumerate().skip(start) {
        if stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
            // Graceful interruption: event `idx` has not been processed,
            // so a final checkpoint at offset `idx` lets a resumed run
            // continue exactly here; the partial report covers the
            // prefix.
            if !pending.is_empty() {
                engine.dispatch(std::mem::take(&mut pending));
            }
            if let Some(c) = ckpt {
                let manifest = CheckpointManifest {
                    detector: det_name.clone(),
                    trace_len,
                    trace_offset: idx as u64,
                    state: engine.capture(),
                };
                let path = c.dir.join(CHECKPOINT_FILE);
                health.note(&path, manifest.save(&path));
            }
            let mut rep = engine.finish();
            rep.checkpointing_degraded |= health.degraded();
            return Ok(rep);
        }
        if ev.is_sync() {
            if !pending.is_empty() {
                engine.dispatch(std::mem::take(&mut pending));
            }
            engine.emit_sync(ev.tid(), *ev);
        } else {
            if let Event::Alloc { addr, size, .. } = *ev {
                engine.register_range(addr.0, size);
            }
            pending.push(*ev);
        }
        since += 1;
        if let Some(c) = ckpt {
            let due = match c.every {
                CheckpointInterval::Events(n) => since >= n.max(1),
                CheckpointInterval::Secs(s) => last.elapsed() >= Duration::from_secs(s),
            };
            if due {
                // Flush before capturing so the snapshot covers every
                // event up to and including `idx`; resuming then starts
                // cleanly at `idx + 1`. (Splitting a batch at a
                // checkpoint boundary does not change any shard's feed
                // order, so the final report is unaffected.)
                if !pending.is_empty() {
                    engine.dispatch(std::mem::take(&mut pending));
                }
                let manifest = CheckpointManifest {
                    detector: det_name.clone(),
                    trace_len,
                    trace_offset: (idx + 1) as u64,
                    state: engine.capture(),
                };
                let path = c.dir.join(CHECKPOINT_FILE);
                health.note(&path, manifest.save(&path));
                since = 0;
                last = Instant::now();
            }
        }
    }
    if !pending.is_empty() {
        engine.dispatch(pending);
    }
    let mut rep = engine.finish();
    rep.checkpointing_degraded |= health.degraded();
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_core::DynamicGranularity;
    use dgrace_detectors::{race_signature, DetectorExt, FastTrack};
    use dgrace_trace::{AccessSize, TraceBuilder};

    fn racy_trace() -> Trace {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, 0x100u64, AccessSize::U64)
            .write(1u32, 0x100u64, AccessSize::U64)
            .locked(0u32, 0u32, |b| {
                b.write(0u32, 0x5000u64, AccessSize::U64);
            })
            .locked(1u32, 0u32, |b| {
                b.write(1u32, 0x5000u64, AccessSize::U64);
            })
            .join(0u32, 1u32);
        b.build()
    }

    #[test]
    fn sharded_replay_matches_serialized() {
        let trace = racy_trace();
        let serial = FastTrack::new().run(&trace);
        for shards in [1usize, 2, 4, 8] {
            let rep = replay_sharded(&FastTrack::new(), &trace, shards);
            assert_eq!(
                race_signature(&rep),
                race_signature(&serial),
                "shards={shards}"
            );
            assert_eq!(rep.stats.events, trace.len() as u64, "shards={shards}");
        }
    }

    #[test]
    fn sharded_replay_dynamic_detector() {
        let trace = racy_trace();
        let serial = DynamicGranularity::new().run(&trace);
        for shards in [1usize, 3] {
            let rep = replay_sharded(&DynamicGranularity::new(), &trace, shards);
            assert_eq!(
                race_signature(&rep),
                race_signature(&serial),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn pruned_replay_drops_accesses_and_keeps_races() {
        use dgrace_trace::{Addr, AnalysisSummary, ClassifiedRange, LocationClass};
        // Thread-local traffic at 0x9000 plus the racy pair at 0x100.
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, 0x100u64, AccessSize::U64)
            .write(1u32, 0x100u64, AccessSize::U64);
        for i in 0..8u64 {
            b.write(0u32, 0x9000 + i * 8, AccessSize::U64);
        }
        b.join(0u32, 1u32);
        let trace = b.build();
        let summary = AnalysisSummary {
            ranges: vec![ClassifiedRange {
                start: Addr(0x9000),
                len: 64,
                class: LocationClass::ThreadLocal,
            }],
            ..Default::default()
        };
        let prune = summary.prune_set(1, 0);
        let bare = replay_sharded(&FastTrack::new(), &trace, 2);
        for shards in [1usize, 2, 4] {
            let rep = replay_sharded_pruned(&FastTrack::new(), &trace, shards, prune.clone());
            assert_eq!(rep.stats.pruned, 8, "shards={shards}");
            assert_eq!(
                rep.stats.events,
                trace.len() as u64,
                "events still count pruned accesses (shards={shards})"
            );
            assert_eq!(
                race_signature(&rep),
                race_signature(&bare),
                "shards={shards}"
            );
        }
    }
}
