//! A bounded single-producer/single-consumer ring buffer.
//!
//! The parallel ingestion pipeline ([`crate::pipeline`]) gives every
//! detector shard its own `Spsc` lane: the producer thread routes
//! address batches into the lanes, each shard worker drains its own.
//! Keeping the channel strictly SPSC means the hot path needs no
//! compare-and-swap loops: the producer owns `tail`, the consumer owns
//! `head`, and each side only ever *reads* the other's cursor (Lamport's
//! classic ring protocol).
//!
//! The workspace forbids `unsafe`, so slots are not `UnsafeCell`s: each
//! slot is a `parking_lot::Mutex<Option<T>>`. Under the SPSC protocol a
//! slot mutex is only ever taken by one thread at a time (the producer
//! before publishing `tail`, the consumer after observing it), so every
//! slot lock is uncontended — it costs an atomic exchange, not a futex
//! wait. Head and tail live on their own cache lines so the two cursors
//! do not false-share.
//!
//! Blocking `push`/`pop` park on a condvar. Notification is always
//! performed while holding the park mutex, and waiters re-check the
//! cursor state under the same mutex before sleeping, so wakeups cannot
//! be lost: a publisher either publishes before the waiter's re-check
//! (the waiter sees the item and never sleeps) or acquires the park
//! mutex after the waiter has begun waiting (the notification is
//! delivered).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

/// A cursor on its own cache line. 64 bytes covers every target this
/// workspace builds for; on 128-byte-line hardware two padded cursors
/// still never share a line with each other.
#[repr(align(64))]
struct PaddedCursor(AtomicU64);

/// Error returned by [`Spsc::try_push`].
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; the value is handed back.
    Full(T),
    /// The ring was closed; the value is handed back.
    Closed(T),
}

/// A bounded SPSC ring. See the module docs for the protocol.
///
/// The type itself does not enforce single-producer/single-consumer
/// usage (that would need `!Sync` tokens); callers uphold it. Violating
/// it cannot corrupt memory — slots are mutexes — but can reorder or
/// interleave items, exactly like any MPMC queue would.
pub struct Spsc<T> {
    slots: Vec<Mutex<Option<T>>>,
    /// Consumer cursor: index of the next slot to pop. Monotonic;
    /// wrap-around is `index % capacity`.
    head: PaddedCursor,
    /// Producer cursor: index of the next slot to fill. Monotonic.
    tail: PaddedCursor,
    closed: AtomicBool,
    /// Parking lot for blocked pushers and poppers; notifications are
    /// issued under this mutex (see module docs).
    park: Mutex<()>,
    /// Signaled when the ring gains an item or is closed.
    not_empty: Condvar,
    /// Signaled when the ring frees a slot or is closed.
    not_full: Condvar,
}

impl<T> Spsc<T> {
    /// Creates a ring holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        Spsc {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: PaddedCursor(AtomicU64::new(0)),
            tail: PaddedCursor(AtomicU64::new(0)),
            closed: AtomicBool::new(false),
            park: Mutex::new(()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// Whether the ring holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](Spsc::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Attempts to enqueue without blocking.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        if self.is_closed() {
            return Err(PushError::Closed(value));
        }
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail - head >= self.slots.len() as u64 {
            return Err(PushError::Full(value));
        }
        // Sole producer: the slot at `tail` was drained by the consumer
        // (head has passed it modulo capacity), so the lock is free.
        *self.slots[(tail % self.slots.len() as u64) as usize].lock() = Some(value);
        self.tail.0.store(tail + 1, Ordering::Release);
        // Wake a popper that may have parked on empty.
        let _g = self.park.lock();
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `value`, blocking while the ring is full. Returns the
    /// value back if the ring is (or becomes) closed.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut value = value;
        loop {
            match self.try_push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Closed(v)) => return Err(v),
                Err(PushError::Full(v)) => {
                    value = v;
                    let mut g = self.park.lock();
                    // Re-check under the park mutex: the consumer
                    // notifies under the same mutex after advancing
                    // `head`, so a free slot cannot slip past us.
                    if self.len() < self.capacity() || self.is_closed() {
                        continue;
                    }
                    self.not_full.wait(&mut g);
                }
            }
        }
    }

    /// Attempts to dequeue without blocking. `None` means *currently
    /// empty*, not closed — check [`is_closed`](Spsc::is_closed).
    pub fn try_pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let value = self.slots[(head % self.slots.len() as u64) as usize]
            .lock()
            .take();
        debug_assert!(value.is_some(), "published slot must be filled");
        self.head.0.store(head + 1, Ordering::Release);
        // Wake a pusher that may have parked on full.
        let _g = self.park.lock();
        self.not_full.notify_one();
        value
    }

    /// Dequeues the next item, blocking while the ring is empty.
    /// Returns `None` only once the ring is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        loop {
            if let Some(v) = self.try_pop() {
                return Some(v);
            }
            let mut g = self.park.lock();
            if !self.is_empty() {
                continue;
            }
            if self.is_closed() {
                // Closed and (still) empty: the producer is gone.
                return None;
            }
            self.not_empty.wait(&mut g);
        }
    }

    /// Closes the ring: subsequent pushes fail, and poppers drain the
    /// remaining items before observing `None`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        let _g = self.park.lock();
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_and_wraparound() {
        let r = Spsc::new(2);
        assert_eq!(r.capacity(), 2);
        // Three full cycles through a 2-slot ring exercises wrap-around.
        for base in (0..6).step_by(2) {
            assert_eq!(r.try_push(base), Ok(()));
            assert_eq!(r.try_push(base + 1), Ok(()));
            assert!(matches!(r.try_push(99), Err(PushError::Full(99))));
            assert_eq!(r.len(), 2);
            assert_eq!(r.try_pop(), Some(base));
            assert_eq!(r.try_pop(), Some(base + 1));
            assert_eq!(r.try_pop(), None);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn close_rejects_pushes_and_drains_poppers() {
        let r = Spsc::new(4);
        r.try_push(1).unwrap();
        r.try_push(2).unwrap();
        r.close();
        assert!(r.is_closed());
        assert!(matches!(r.try_push(3), Err(PushError::Closed(3))));
        assert_eq!(r.push(3), Err(3));
        // Queued items survive the close...
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), Some(2));
        // ...then poppers observe end-of-stream instead of blocking.
        assert_eq!(r.pop(), None);
        assert_eq!(r.try_pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let r = Arc::new(Spsc::new(1));
        let r2 = Arc::clone(&r);
        let consumer = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = r2.pop() {
                got.push(v);
            }
            got
        });
        for i in 0..100 {
            r.push(i).unwrap();
        }
        r.close();
        assert_eq!(consumer.join().unwrap(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_push_wakes_on_pop() {
        let r = Arc::new(Spsc::new(1));
        let r2 = Arc::clone(&r);
        let producer = thread::spawn(move || {
            for i in 0..100 {
                r2.push(i).unwrap();
            }
            r2.close();
        });
        let mut got = Vec::new();
        while let Some(v) = r.pop() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn close_unblocks_a_parked_popper() {
        let r = Arc::new(Spsc::<u32>::new(1));
        let r2 = Arc::clone(&r);
        let consumer = thread::spawn(move || r2.pop());
        // Give the popper time to park, then close with nothing queued.
        thread::sleep(std::time::Duration::from_millis(20));
        r.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn close_unblocks_a_parked_pusher() {
        let r = Arc::new(Spsc::new(1));
        r.try_push(0u32).unwrap();
        let r2 = Arc::clone(&r);
        let producer = thread::spawn(move || r2.push(1));
        thread::sleep(std::time::Duration::from_millis(20));
        r.close();
        assert_eq!(producer.join().unwrap(), Err(1));
        assert_eq!(r.pop(), Some(0));
        assert_eq!(r.pop(), None);
    }
}
