//! Sampling-tier equivalence acceptance tests.
//!
//! Three invariants, matching the CI `sampling-equivalence` gate:
//!
//! 1. **100% budget is free**: a `Sampled` wrapper whose spec admits
//!    every access (`full`, `period:1`, `adaptive:1.0`, or a `loc:`
//!    budget no counter can exhaust) produces byte-for-byte the report
//!    of an unwrapped run — for every detector family, both shadow
//!    stores, and shard counts 1/2/4 — on arbitrary traces.
//! 2. **Seeded runs are deterministic**: the same spec + seed gives the
//!    identical report on repeat runs, and the funnel and SPSC-pipeline
//!    engines agree event-for-event.
//! 3. **Sampling survives a resume**: a checkpointed sampled run
//!    resumed from its last on-disk manifest finishes with exactly the
//!    uninterrupted sampled report (the sampler's counters ride in the
//!    `DGSM` snapshot layer).

use std::path::PathBuf;

use dgrace_core::DynamicGranularityOn;
use dgrace_detectors::{DjitOn, FastTrackOn, Report, SampleSpec, Sampled, ShardableDetector};
use dgrace_runtime::{
    replay_checkpointed, replay_pipelined, replay_sharded, CheckpointInterval, CheckpointManifest,
    CheckpointOptions, CHECKPOINT_FILE,
};
use dgrace_shadow::{HashSelect, PagedSelect};
use dgrace_trace::{AccessSize, PruneSet, Trace, TraceBuilder};
use proptest::prelude::*;

type Proto = Box<dyn ShardableDetector + Send>;

/// The six detector × store combinations: a bare prototype and a
/// sampled prototype wrapping the same detector under `spec`.
fn prototypes() -> Vec<(
    &'static str,
    Box<dyn Fn() -> Proto>,
    Box<dyn Fn(&str) -> Proto>,
)> {
    macro_rules! combo {
        ($name:expr, $ty:ty) => {
            (
                $name,
                Box::new(|| Box::new(<$ty>::new()) as Proto) as Box<dyn Fn() -> Proto>,
                Box::new(|spec: &str| {
                    let spec = SampleSpec::parse(spec).expect("valid spec");
                    Box::new(Sampled::new(<$ty>::new(), spec)) as Proto
                }) as Box<dyn Fn(&str) -> Proto>,
            )
        };
    }
    vec![
        combo!("fasttrack/hash", FastTrackOn<HashSelect>),
        combo!("fasttrack/paged", FastTrackOn<PagedSelect>),
        combo!("djit/hash", DjitOn<HashSelect>),
        combo!("djit/paged", DjitOn<PagedSelect>),
        combo!("dynamic/hash", DynamicGranularityOn<HashSelect>),
        combo!("dynamic/paged", DynamicGranularityOn<PagedSelect>),
    ]
}

/// Specs that must admit every access: the wrapper's report may only
/// differ from the bare run in its name and sampling counters.
const FULL_BUDGET_SPECS: [&str; 4] = ["full", "period:1", "adaptive:1.0", "loc:4294967295"];

/// One generated trace operation; threads 1..=3 are forked from 0 and
/// joined at the end, so every op is concurrency-meaningful.
#[derive(Clone, Debug)]
enum Op {
    Read { tid: u32, addr: u64 },
    Write { tid: u32, addr: u64 },
    Locked { tid: u32, lock: u32, addr: u64 },
}

/// Addresses collide across a few 4 KiB regions so shard routing,
/// shadow-cell reuse, and real races are all exercised.
fn arb_addr() -> impl Strategy<Value = u64> {
    (1u64..=4, 0u64..16).prop_map(|(r, o)| (r << 12) | (o * 8))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, arb_addr()).prop_map(|(tid, addr)| Op::Read { tid, addr }),
        (0u32..4, arb_addr()).prop_map(|(tid, addr)| Op::Write { tid, addr }),
        (0u32..4, 0u32..2, arb_addr()).prop_map(|(tid, lock, addr)| Op::Locked { tid, lock, addr }),
    ]
}

fn build_trace(ops: &[Op]) -> Trace {
    let mut b = TraceBuilder::new();
    for t in 1..=3u32 {
        b.fork(0u32, t);
    }
    for op in ops {
        match *op {
            Op::Read { tid, addr } => {
                b.read(tid, addr, AccessSize::U64);
            }
            Op::Write { tid, addr } => {
                b.write(tid, addr, AccessSize::U64);
            }
            Op::Locked { tid, lock, addr } => {
                b.locked(tid, lock, |t| {
                    t.write(tid, addr, AccessSize::U64);
                });
            }
        }
    }
    for t in 1..=3u32 {
        b.join(0u32, t);
    }
    b.build()
}

/// Strips what a sampled run is *allowed* to change at 100% budget:
/// the detector name (suffixed with `+sampled@<spec>`) and the two
/// sampling counters. Everything else must match byte-for-byte.
fn normalized(mut rep: Report) -> Report {
    rep.detector = "normalized".to_string();
    rep.stats.sample_admitted = 0;
    rep.stats.sample_skipped = 0;
    rep
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dgrace-sampling-{}-{}",
        std::process::id(),
        tag.replace([':', ','], "-").replace('/', "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Invariant 1 on random traces: every full-budget spec, every
    /// detector family, both stores, shards 1/2/4.
    #[test]
    fn full_budget_sampling_is_byte_identical(
        ops in proptest::collection::vec(arb_op(), 1..48)
    ) {
        let trace = build_trace(&ops);
        for (name, bare, sampled) in prototypes() {
            for shards in [1usize, 2, 4] {
                let clean = normalized(replay_sharded(bare().as_ref(), &trace, shards));
                for spec in FULL_BUDGET_SPECS {
                    let rep = replay_sharded(sampled(spec).as_ref(), &trace, shards);
                    prop_assert_eq!(
                        normalized(rep),
                        clean.clone(),
                        "{} s{} spec {}: 100% budget must be invisible",
                        name, shards, spec
                    );
                }
            }
        }
    }
}

/// Invariant 2: a seeded sampled run is deterministic across repeats
/// and across the funnel / SPSC-pipeline engines, for every strategy.
#[test]
fn seeded_sampling_is_deterministic_across_engines() {
    let ops: Vec<Op> = (0..120)
        .map(|i| {
            let tid = (i % 4) as u32;
            let addr = ((1 + (i % 4) as u64) << 12) | (((i / 4) % 16) as u64 * 8);
            match i % 3 {
                0 => Op::Write { tid, addr },
                1 => Op::Read { tid, addr },
                _ => Op::Locked {
                    tid,
                    lock: (i % 2) as u32,
                    addr,
                },
            }
        })
        .collect();
    let trace = build_trace(&ops);
    for spec in [
        "loc:2,seed:42",
        "loc:2,granule:256,seed:42",
        "period:2,window:8,seed:9",
    ] {
        for (name, _, sampled) in prototypes() {
            for shards in [2usize, 4] {
                let funnel = replay_sharded(sampled(spec).as_ref(), &trace, shards);
                let again = replay_sharded(sampled(spec).as_ref(), &trace, shards);
                assert_eq!(
                    funnel, again,
                    "{name} s{shards} {spec}: repeat runs must be identical"
                );
                let piped = replay_pipelined(sampled(spec).as_ref(), &trace, shards);
                assert_eq!(
                    funnel, piped,
                    "{name} s{shards} {spec}: funnel and pipeline must agree"
                );
            }
        }
    }
}

/// Invariant 3: checkpoint + resume in the middle of a *sampled* run.
/// The resumed report must equal the uninterrupted sampled report —
/// i.e. the sampler's counters really are restored, not reset (a reset
/// would re-admit the first `K` accesses of every granule and change
/// the race set).
#[test]
fn resumed_sampled_run_equals_uninterrupted_run() {
    let ops: Vec<Op> = (0..80)
        .map(|i| {
            let tid = (i % 4) as u32;
            let addr = ((1 + (i % 2) as u64) << 12) | (((i / 2) % 8) as u64 * 8);
            if i % 5 == 0 {
                Op::Read { tid, addr }
            } else {
                Op::Write { tid, addr }
            }
        })
        .collect();
    let trace = build_trace(&ops);
    let spec = "loc:1,seed:7";
    for (name, _, sampled) in prototypes() {
        for shards in [1usize, 2] {
            let clean = replay_sharded(sampled(spec).as_ref(), &trace, shards);
            let dir = scratch_dir(&format!("resume-{name}-s{shards}"));
            let ckpt = CheckpointOptions {
                dir: dir.clone(),
                every: CheckpointInterval::Events(7),
            };
            let full = replay_checkpointed(
                sampled(spec),
                &trace,
                shards,
                PruneSet::empty(),
                None,
                Some(&ckpt),
                None,
            )
            .expect("checkpointed sampled run");
            assert_eq!(full, clean, "{name} s{shards}: checkpointing is free");

            let manifest = CheckpointManifest::load(&dir.join(CHECKPOINT_FILE))
                .expect("manifest readable")
                .expect("manifest present");
            assert!(manifest.trace_offset > 0);
            let resumed = replay_checkpointed(
                sampled(spec),
                &trace,
                shards,
                PruneSet::empty(),
                None,
                None,
                Some(&manifest),
            )
            .expect("resumed sampled run");
            assert_eq!(resumed, clean, "{name} s{shards}: resumed == uninterrupted");

            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
