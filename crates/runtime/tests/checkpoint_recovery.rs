//! Self-healing and crash-resume acceptance tests.
//!
//! The invariant under test everywhere: a run that loses a detector to a
//! panic and respawns it, or that is interrupted and resumed from its
//! last checkpoint, produces **exactly** the report of an uninterrupted
//! run — same races, same counters — across all three detector families,
//! both shadow-store backends, and shard counts 1/2/4.

use std::path::PathBuf;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use dgrace_core::DynamicGranularityOn;
use dgrace_detectors::{DjitOn, FastTrackOn, Report, ShardableDetector};
use dgrace_runtime::{
    replay_checkpointed, replay_sharded, replay_supervised, silence_injected_panics,
    CheckpointInterval, CheckpointManifest, CheckpointOptions, PanicOnEvent, ReplayError,
    SupervisorPolicy, CHECKPOINT_FILE,
};
use dgrace_shadow::{HashSelect, PagedSelect};
use dgrace_trace::{AccessSize, Trace, TraceBuilder};

type Proto = Box<dyn ShardableDetector + Send>;

/// The six detector × store combinations of the matrix. Each entry
/// yields a fresh bare prototype and a fault-wrapped prototype whose
/// `target`-th spawned shard panics at its `panic_at`-th event.
fn prototypes() -> Vec<(
    &'static str,
    Box<dyn Fn() -> Proto>,
    Box<dyn Fn(usize, u64) -> Proto>,
)> {
    macro_rules! combo {
        ($name:expr, $ty:ty) => {
            (
                $name,
                Box::new(|| Box::new(<$ty>::new()) as Proto) as Box<dyn Fn() -> Proto>,
                Box::new(|target, at| {
                    Box::new(PanicOnEvent::new(<$ty>::new(), target, at)) as Proto
                }) as Box<dyn Fn(usize, u64) -> Proto>,
            )
        };
    }
    vec![
        combo!("fasttrack/hash", FastTrackOn<HashSelect>),
        combo!("fasttrack/paged", FastTrackOn<PagedSelect>),
        combo!("djit/hash", DjitOn<HashSelect>),
        combo!("djit/paged", DjitOn<PagedSelect>),
        combo!("dynamic/hash", DynamicGranularityOn<HashSelect>),
        combo!("dynamic/paged", DynamicGranularityOn<PagedSelect>),
    ]
}

/// Watchdog: a hang in a recovery path must fail the test, not wedge
/// the suite.
fn run_with_timeout<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog thread");
    match rx.recv_timeout(Duration::from_secs(60)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(_) => panic!("{name}: did not terminate within 60s"),
    }
}

/// Four racy pairs, one per 4 KiB region (regions 1..=4), plus
/// lock-protected traffic and fork/join edges. Region `r` routes to
/// shard `r % shards`, so every shard count exercises cross-shard
/// routing.
fn matrix_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    for r in 1..=4u64 {
        let addr = (r << 12) | 0x100;
        b.write(0u32, addr, AccessSize::U64)
            .write(1u32, addr, AccessSize::U64)
            .read(1u32, addr + 8, AccessSize::U64);
    }
    b.locked(0u32, 0u32, |t| {
        t.write(0u32, 0x6000u64, AccessSize::U64);
    })
    .locked(1u32, 0u32, |t| {
        t.write(1u32, 0x6000u64, AccessSize::U64);
    })
    .join(0u32, 1u32);
    b.build()
}

/// Reports are compared in full (races, stats, flags); only the
/// detector name is normalized, because the fault wrapper suffixes it.
fn normalized(mut rep: Report, name: &str) -> Report {
    rep.detector = name.to_string();
    rep
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dgrace-recovery-{}-{}",
        std::process::id(),
        tag.replace('/', "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Tentpole matrix: a shard panic at event N is *healed* by the
/// supervisor — the recovered run's report is byte-for-byte the clean
/// run's report, for every detector family, store backend, and shard
/// count.
#[test]
fn respawn_matrix_equals_clean_run() {
    silence_injected_panics();
    let trace = matrix_trace();
    for (name, bare, faulty) in prototypes() {
        for shards in [1usize, 2, 4] {
            let clean = replay_sharded(bare().as_ref(), &trace, shards);
            assert!(!clean.races.is_empty(), "{name}: clean run finds races");
            for panic_at in [1u64, 3] {
                let target = shards - 1;
                let proto = faulty(target, panic_at);
                let trace2 = trace.clone();
                let healed = run_with_timeout(
                    &format!("respawn-{name}-s{shards}-n{panic_at}"),
                    move || {
                        replay_supervised(
                            proto,
                            &trace2,
                            shards,
                            dgrace_trace::PruneSet::empty(),
                            SupervisorPolicy::default(),
                        )
                    },
                );
                assert!(
                    healed.failures.is_empty(),
                    "{name} s{shards} n{panic_at}: shard must heal, got {:?}",
                    healed.failures
                );
                assert_eq!(
                    normalized(healed, &clean.detector),
                    clean,
                    "{name} s{shards} n{panic_at}: healed run == clean run"
                );
            }
        }
    }
}

/// Checkpoint + resume differential: a run checkpointing every few
/// events, then a second run resumed from the last on-disk manifest,
/// both produce exactly the clean report.
#[test]
fn checkpointed_and_resumed_runs_equal_clean_run() {
    let trace = matrix_trace();
    for (name, bare, _) in prototypes() {
        for shards in [1usize, 2] {
            let clean = replay_sharded(bare().as_ref(), &trace, shards);
            let dir = scratch_dir(&format!("resume-{name}-s{shards}"));
            let ckpt = CheckpointOptions {
                dir: dir.clone(),
                every: CheckpointInterval::Events(3),
            };

            // Full run with periodic checkpoints: report unchanged.
            let full = replay_checkpointed(
                bare(),
                &trace,
                shards,
                dgrace_trace::PruneSet::empty(),
                None,
                Some(&ckpt),
                None,
            )
            .expect("checkpointed run");
            assert_eq!(full, clean, "{name} s{shards}: checkpointing is free");

            // The manifest on disk is the *last* periodic checkpoint —
            // exactly what survives a kill -9 after that point. Resume
            // from it and finish the tail of the trace.
            let manifest = CheckpointManifest::load(&dir.join(CHECKPOINT_FILE))
                .expect("manifest readable")
                .expect("manifest present");
            assert!(manifest.trace_offset > 0);
            assert!(manifest.trace_offset <= trace.len() as u64);
            let resumed = replay_checkpointed(
                bare(),
                &trace,
                shards,
                dgrace_trace::PruneSet::empty(),
                None,
                None,
                Some(&manifest),
            )
            .expect("resumed run");
            assert_eq!(resumed, clean, "{name} s{shards}: resumed run == clean run");

            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Resuming from every checkpoint position — not just the last — lands
/// on the clean report, using an interval of one event so each prefix
/// length is exercised.
#[test]
fn resume_from_every_prefix_equals_clean_run() {
    let trace = matrix_trace();
    let bare = || Box::new(FastTrackOn::<HashSelect>::new()) as Proto;
    let shards = 2;
    let clean = replay_sharded(bare().as_ref(), &trace, shards);
    let dir = scratch_dir("every-prefix");
    for stop_after in 1..trace.len() as u64 {
        // Checkpoint exactly once, after `stop_after` events, by running
        // with that interval and keeping only the first manifest: replay
        // over the prefix-truncated trace.
        let prefix: Trace =
            Trace::from_events(trace.iter().take(stop_after as usize).copied().collect());
        let ckpt = CheckpointOptions {
            dir: dir.clone(),
            every: CheckpointInterval::Events(stop_after),
        };
        let _ = replay_checkpointed(
            bare(),
            &prefix,
            shards,
            dgrace_trace::PruneSet::empty(),
            None,
            Some(&ckpt),
            None,
        )
        .expect("prefix run");
        let mut manifest = CheckpointManifest::load(&dir.join(CHECKPOINT_FILE))
            .expect("manifest readable")
            .expect("manifest present");
        assert_eq!(manifest.trace_offset, stop_after);
        // The manifest recorded the prefix's length; patch it to the
        // full trace so the resume covers the tail (this mirrors a run
        // over the full trace killed right after this checkpoint).
        manifest.trace_len = trace.len() as u64;
        let resumed = replay_checkpointed(
            bare(),
            &trace,
            shards,
            dgrace_trace::PruneSet::empty(),
            None,
            None,
            Some(&manifest),
        )
        .expect("resumed run");
        assert_eq!(
            resumed, clean,
            "resume after {stop_after} events == clean run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A resume under the wrong configuration is rejected with a structured
/// mismatch, and a torn manifest is rejected at load time.
#[test]
fn mismatched_or_torn_checkpoints_are_rejected() {
    let trace = matrix_trace();
    let dir = scratch_dir("mismatch");
    let ckpt = CheckpointOptions {
        dir: dir.clone(),
        every: CheckpointInterval::Events(4),
    };
    let fasttrack = || Box::new(FastTrackOn::<HashSelect>::new()) as Proto;
    let _ = replay_checkpointed(
        fasttrack(),
        &trace,
        2,
        dgrace_trace::PruneSet::empty(),
        None,
        Some(&ckpt),
        None,
    )
    .expect("checkpointed run");
    let path = dir.join(CHECKPOINT_FILE);
    let manifest = CheckpointManifest::load(&path)
        .expect("manifest readable")
        .expect("manifest present");

    // Wrong detector.
    let djit = Box::new(DjitOn::<HashSelect>::new()) as Proto;
    let err = replay_checkpointed(
        djit,
        &trace,
        2,
        dgrace_trace::PruneSet::empty(),
        None,
        None,
        Some(&manifest),
    )
    .expect_err("detector mismatch");
    assert!(matches!(err, ReplayError::Mismatch(_)), "{err}");

    // Wrong shard count.
    let err = replay_checkpointed(
        fasttrack(),
        &trace,
        4,
        dgrace_trace::PruneSet::empty(),
        None,
        None,
        Some(&manifest),
    )
    .expect_err("shard mismatch");
    assert!(matches!(err, ReplayError::Mismatch(_)), "{err}");

    // Wrong trace.
    let mut b = TraceBuilder::new();
    b.write(0u32, 0x100u64, AccessSize::U64);
    let other = b.build();
    let err = replay_checkpointed(
        fasttrack(),
        &other,
        2,
        dgrace_trace::PruneSet::empty(),
        None,
        None,
        Some(&manifest),
    )
    .expect_err("trace mismatch");
    assert!(matches!(err, ReplayError::Mismatch(_)), "{err}");

    // Torn file: any truncation fails loudly at load.
    let bytes = std::fs::read(&path).expect("manifest bytes");
    std::fs::write(&path, &bytes[..bytes.len() - 1]).expect("truncate");
    assert!(CheckpointManifest::load(&path).is_err(), "torn manifest");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A failing checkpoint *write* must not abort detection: the run keeps
/// going on the last complete checkpoint, flags the report as
/// `checkpointing_degraded`, and everything else — races, counters —
/// is exactly the clean run.
#[test]
fn checkpoint_write_failure_degrades_not_aborts() {
    let trace = matrix_trace();
    for (name, bare, _) in prototypes() {
        for shards in [1usize, 2] {
            let clean = replay_sharded(bare().as_ref(), &trace, shards);
            let dir = scratch_dir(&format!("wrfail-{name}-s{shards}"));
            std::fs::create_dir_all(&dir).expect("ckpt dir");
            // Squat the manifest path with a non-empty directory: every
            // atomic rename at commit time now fails, the same
            // observable failure as ENOSPC or EIO on the final rename.
            std::fs::create_dir_all(dir.join(CHECKPOINT_FILE).join("occupied"))
                .expect("squat manifest path");
            let ckpt = CheckpointOptions {
                dir: dir.clone(),
                every: CheckpointInterval::Events(3),
            };
            let mut rep = replay_checkpointed(
                bare(),
                &trace,
                shards,
                dgrace_trace::PruneSet::empty(),
                None,
                Some(&ckpt),
                None,
            )
            .expect("write failure must not abort the run");
            assert!(
                rep.checkpointing_degraded,
                "{name} s{shards}: failed writes must be flagged"
            );
            // Beyond the flag, the report is untouched by the failure.
            rep.checkpointing_degraded = false;
            assert_eq!(rep, clean, "{name} s{shards}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Supervision composes with checkpoints: a panicking shard heals by
/// restoring its last snapshot and replaying only the journal delta,
/// and the final report still equals the clean run.
#[test]
fn supervised_checkpointed_run_heals_from_snapshot() {
    silence_injected_panics();
    let trace = matrix_trace();
    let shards = 2;
    let clean = replay_sharded(&FastTrackOn::<HashSelect>::new(), &trace, shards);
    let dir = scratch_dir("supervised-ckpt");
    let ckpt = CheckpointOptions {
        dir: dir.clone(),
        every: CheckpointInterval::Events(2),
    };
    // The target shard panics late (its 5th event), well after several
    // checkpoints have been taken, so the heal path exercises
    // snapshot-restore + delta replay rather than a from-scratch replay.
    let proto = Box::new(PanicOnEvent::new(FastTrackOn::<HashSelect>::new(), 1, 5)) as Proto;
    let trace2 = trace.clone();
    let healed = run_with_timeout("supervised-ckpt", move || {
        replay_checkpointed(
            proto,
            &trace2,
            shards,
            dgrace_trace::PruneSet::empty(),
            Some(SupervisorPolicy::default()),
            Some(&ckpt),
            None,
        )
    })
    .expect("supervised checkpointed run");
    assert!(healed.failures.is_empty(), "{:?}", healed.failures);
    assert_eq!(normalized(healed, &clean.detector), clean);
    let _ = std::fs::remove_dir_all(&dir);
}
