//! The deterministic fault matrix (ISSUE 4 acceptance criteria):
//!
//! {shard panic at event N, corrupt byte at offset K, shadow budget at
//! ~50% of clean peak} × shard counts {1, 2, 4} — every run must
//! terminate (bounded by a watchdog), never deadlock, and produce a
//! structured degraded report whose race set equals the clean run's
//! races restricted to the healthy shards.
//!
//! Shard routing is predictable by construction: the traces carry no
//! `Alloc` events, so every address routes through the engine's fallback
//! region hash `(addr >> 12) % shards`, and each racy pair lives in its
//! own 4 KiB region.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use dgrace_detectors::{race_signature, Detector, DetectorExt, FastTrack, RaceKind, Report};
use dgrace_runtime::{
    corrupt_byte, replay_pipelined, replay_pipelined_supervised, replay_sharded,
    silence_injected_panics, PanicOnEvent, Runtime, RuntimeOptions, SupervisorPolicy,
};
use dgrace_trace::io::{from_bytes, read_trace_with, to_bytes};
use dgrace_trace::{
    AccessSize, Addr, DecodeLimits, PruneSet, ReadOptions, Trace, TraceBuilder, TraceError,
};

/// Watchdog: runs `f` on a helper thread and panics if it has not
/// terminated within 30 seconds — a hang or deadlock in a containment
/// path must fail the test, not wedge the suite.
fn run_with_timeout<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("spawn watchdog thread");
    match rx.recv_timeout(Duration::from_secs(30)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(_) => panic!("{name}: did not terminate within 30s"),
    }
}

/// Four racy pairs, one per 4 KiB region (regions 1..=4), plus
/// lock-protected traffic. Region `r` routes to shard `r % shards`.
fn matrix_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    for r in 1..=4u64 {
        let addr = (r << 12) | 0x100;
        b.write(0u32, addr, AccessSize::U64)
            .write(1u32, addr, AccessSize::U64);
    }
    b.locked(0u32, 0u32, |t| {
        t.write(0u32, 0x6000u64, AccessSize::U64);
    })
    .locked(1u32, 0u32, |t| {
        t.write(1u32, 0x6000u64, AccessSize::U64);
    })
    .join(0u32, 1u32);
    b.build()
}

fn shard_of(addr: Addr, shards: usize) -> usize {
    ((addr.0 >> 12) as usize) % shards
}

/// The clean signature restricted to shards not named in `rep.failures`.
fn restrict_to_healthy(
    clean: &[(Addr, RaceKind)],
    rep: &Report,
    shards: usize,
) -> Vec<(Addr, RaceKind)> {
    let failed: Vec<usize> = rep.failures.iter().map(|f| f.shard).collect();
    clean
        .iter()
        .filter(|(a, _)| !failed.contains(&shard_of(*a, shards)))
        .cloned()
        .collect()
}

#[test]
fn shard_panic_matrix() {
    silence_injected_panics();
    let trace = matrix_trace();
    let clean = race_signature(&FastTrack::new().run(&trace));
    assert_eq!(clean.len(), 4, "clean run sees all four races");

    for shards in [1usize, 2, 4] {
        for target in 0..shards {
            for panic_at in [1u64, 3, 7] {
                let trace = trace.clone();
                let clean = clean.clone();
                let rep = run_with_timeout(
                    &format!("panic-s{shards}-t{target}-n{panic_at}"),
                    move || {
                        let proto = PanicOnEvent::new(FastTrack::new(), target, panic_at);
                        replay_sharded(&proto, &trace, shards)
                    },
                );
                assert_eq!(rep.failures.len(), 1, "s{shards} t{target} n{panic_at}");
                assert_eq!(rep.failures[0].shard, target);
                assert!(rep.failures[0].payload.contains("fault-injection"));
                assert!(rep.is_degraded());
                assert_eq!(
                    rep.stats.events,
                    trace_event_count(),
                    "logical event count stays exact (s{shards} t{target} n{panic_at})"
                );
                let expected = restrict_to_healthy(&clean, &rep, shards);
                assert_eq!(
                    race_signature(&rep),
                    expected,
                    "degraded = clean restricted to healthy shards \
                     (s{shards} t{target} n{panic_at})"
                );
            }
        }
    }
}

fn trace_event_count() -> u64 {
    matrix_trace().len() as u64
}

#[test]
fn corrupt_byte_matrix() {
    let trace = matrix_trace();
    let clean = race_signature(&FastTrack::new().run(&trace));
    let bytes = to_bytes(&trace);

    // Header corruption: strict decode reports a typed error, never
    // panics or hangs.
    for (offset, value) in [(0usize, 0x00u8), (4, 0xEE), (8, 0xFF)] {
        let mut corrupted = bytes.clone();
        corrupt_byte(&mut corrupted, offset, value);
        let err = from_bytes(&corrupted).expect_err("corrupt header must fail");
        match offset {
            0 => assert!(matches!(err, TraceError::BadMagic(_))),
            4 => assert!(matches!(err, TraceError::BadVersion(_))),
            _ => assert!(err.is_corruption() || matches!(err, TraceError::Truncated { .. })),
        }
    }

    // Body corruption on record *tag* bytes (events start at offset 16;
    // fork is 9 bytes, the first write 14): strict mode fails typed;
    // resync mode recovers an in-order subset that replays cleanly at
    // every shard count.
    for offset in [16usize, 25, 39] {
        let mut corrupted = bytes.clone();
        corrupt_byte(&mut corrupted, offset, 0xFF);
        let err = from_bytes(&corrupted).expect_err("corrupt tag must fail strict decode");
        assert!(
            err.is_corruption() || matches!(err, TraceError::Truncated { .. }),
            "offset {offset}: {err}"
        );

        let opts = ReadOptions {
            limits: DecodeLimits::default(),
            resync: true,
        };
        let (recovered, stats) =
            read_trace_with(&mut corrupted.as_slice(), opts).expect("resync decode succeeds");
        assert!(stats.lossy(), "offset {offset}: resync must report loss");
        assert!(stats.dropped_bytes > 0);

        for shards in [1usize, 2, 4] {
            let recovered = recovered.clone();
            let rep = run_with_timeout(&format!("corrupt-o{offset}-s{shards}"), move || {
                replay_sharded(&FastTrack::new(), &recovered, shards)
            });
            // A recovered subset can only miss races, never invent them.
            for sig in race_signature(&rep) {
                assert!(
                    clean.contains(&sig),
                    "offset {offset} s{shards}: phantom race {sig:?}"
                );
            }
        }
    }

    // Corruption inside a payload field (an address byte) may decode to a
    // *semantically different but structurally valid* trace — the decoder
    // cannot detect it. The contract is only: no panic, and the replay
    // still terminates.
    let mut silent = bytes.clone();
    corrupt_byte(&mut silent, 30, 0xFF);
    if let Ok(t) = from_bytes(&silent) {
        let rep = run_with_timeout("corrupt-silent", move || {
            replay_sharded(&FastTrack::new(), &t, 2)
        });
        assert_eq!(rep.failures.len(), 0);
    }
}

#[test]
fn budget_pressure_matrix() {
    // Cold sweep over 256 chunks, then a racy pair at the warmest
    // (highest) address: eviction under a ~50% budget removes cold
    // low-address chunks, so the race survives and the report is
    // flagged rather than aborted.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    for i in 0..256u64 {
        b.write(0u32, 0x1000 + i * 128, AccessSize::U32);
    }
    b.write(0u32, 0x100000u64, AccessSize::U32)
        .write(1u32, 0x100000u64, AccessSize::U32)
        .join(0u32, 1u32);
    let trace = b.build();

    let clean = FastTrack::new().run(&trace);
    assert!(!clean.budget_degraded);
    let budget = (clean.stats.peak_total_bytes / 2) as u64;

    for shards in [1usize, 2, 4] {
        let trace = trace.clone();
        let rep = run_with_timeout(&format!("budget-s{shards}"), move || {
            let mut proto = FastTrack::new();
            // The budget is a whole-run cap: divide it across shards,
            // as the CLI does.
            proto.set_shadow_budget(Some(budget / shards as u64));
            replay_sharded(&proto, &trace, shards)
        });
        assert!(rep.is_degraded(), "s{shards}: budget breach must flag");
        assert!(rep.budget_degraded, "s{shards}");
        assert!(rep.stats.evicted > 0, "s{shards}");
        assert!(rep.failures.is_empty(), "s{shards}: degraded, not failed");
        let races = race_signature(&rep);
        assert!(
            races.contains(&(Addr(0x100000), RaceKind::WriteWrite)),
            "s{shards}: warm race survives eviction; got {races:?}"
        );
    }
}

#[test]
fn combined_faults_still_terminate() {
    silence_injected_panics();
    // Panic + budget pressure at once, across shard counts: the run must
    // still terminate with a structured report.
    let trace = matrix_trace();
    for shards in [1usize, 2, 4] {
        let trace = trace.clone();
        let rep = run_with_timeout(&format!("combined-s{shards}"), move || {
            let mut proto = PanicOnEvent::new(FastTrack::new(), 0, 2);
            proto.set_shadow_budget(Some(1024));
            replay_sharded(&proto, &trace, shards)
        });
        assert_eq!(rep.failures.len(), 1);
        assert!(rep.is_degraded());
    }
}

#[test]
fn online_runtime_contains_shard_panic() {
    silence_injected_panics();
    // The live (threaded) runtime path: a quarantined shard must not
    // poison the engine for the still-running instrumented threads.
    let rep = run_with_timeout("online-panic", || {
        let proto = PanicOnEvent::new(FastTrack::new(), 0, 1);
        let rt = Runtime::sharded_with_options(
            &proto,
            RuntimeOptions {
                shards: 2,
                buffer_capacity: 4,
                record: false,
            },
        );
        let main = rt.main();
        let cells: Vec<_> = (0..8).map(|_| rt.cell(0)).collect();
        let (child, ticket) = main.fork();
        let cs: Vec<_> = cells.iter().cloned().collect();
        let jh = thread::spawn(move || {
            for c in &cs {
                c.set(&child, 1);
            }
        });
        for c in &cells {
            c.set(&main, 2);
        }
        jh.join().unwrap();
        main.join(ticket);
        rt.finish()
    });
    assert_eq!(rep.failures.len(), 1, "{:?}", rep.failures);
    assert!(rep.is_degraded());
}

#[test]
fn try_finish_reports_total_failure() {
    silence_injected_panics();
    let proto = PanicOnEvent::new(FastTrack::new(), 0, 1);
    let rt = Runtime::sharded(&proto, 1);
    let main = rt.main();
    let c = rt.cell(0);
    c.set(&main, 1);
    drop(main);
    let err = rt.try_finish().expect_err("all shards failed");
    let msg = err.to_string();
    assert!(msg.contains("all 1 detector shards failed"), "{msg}");
}

/// Ring-pipeline fault coverage: a shard panics in its *first* segment
/// while the producer has run far ahead, so its SPSC lane holds many
/// queued segments at quarantine time. The supervisor must heal the
/// shard and every queued segment must be analyzed — zero events lost,
/// zero dropped, and a report equal to the clean funnel run.
#[test]
fn pipeline_panic_with_queued_segments_heals_without_loss() {
    silence_injected_panics();
    // Shard 1 (region 1) receives ~16k accesses — sixteen 1024-event
    // ring segments — including one racy pair; shard 0 (region 2) gets
    // mirrored healthy traffic. The panic fires on shard 1's 100th
    // event, inside its first segment.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    for i in 0..8_000u64 {
        let off = (i % 250) * 16;
        b.write(0u32, 0x1000 + off, AccessSize::U64)
            .write(0u32, 0x2000 + off, AccessSize::U64);
    }
    b.write(0u32, 0x1F00u64, AccessSize::U64)
        .write(1u32, 0x1F00u64, AccessSize::U64)
        .write(0u32, 0x2F00u64, AccessSize::U64)
        .write(1u32, 0x2F00u64, AccessSize::U64)
        .join(0u32, 1u32);
    let trace = b.build();

    let shards = 2usize;
    let clean = replay_sharded(&FastTrack::new(), &trace, shards);
    assert_eq!(race_signature(&clean).len(), 2, "clean run sees both races");

    let trace2 = trace.clone();
    let healed = run_with_timeout("pipeline-queued-heal", move || {
        replay_pipelined_supervised(
            Box::new(PanicOnEvent::new(FastTrack::new(), 1, 100)),
            &trace2,
            shards,
            PruneSet::empty(),
            SupervisorPolicy::default(),
        )
    });
    assert!(healed.failures.is_empty(), "{:?}", healed.failures);
    assert_eq!(healed.stats.events_lost, 0, "healed run loses nothing");
    assert_eq!(healed.stats.dropped, 0, "healed run drops nothing");
    let mut healed = healed;
    healed.detector = clean.detector.clone();
    assert_eq!(healed, clean, "healed pipeline == clean funnel");
}

/// An *unhealable* panic on the pipeline (respawn budget exhausted by a
/// detector that dies on every event) still terminates, quarantines
/// exactly one shard, and partitions that shard's traffic into
/// `events_lost` (analyzed before death) + `dropped` (never analyzed)
/// with nothing counted twice.
#[test]
fn pipeline_exhausted_respawns_partition_loss_exactly() {
    silence_injected_panics();
    let trace = matrix_trace();
    let shards = 2usize;
    let clean = race_signature(&replay_pipelined(&FastTrack::new(), &trace, shards));
    let trace2 = trace.clone();
    let rep = run_with_timeout("pipeline-unhealed", move || {
        replay_pipelined_supervised(
            // Panics on its very first event, and again on every respawn.
            Box::new(PanicOnEvent::new(FastTrack::new(), 1, 1)),
            &trace2,
            shards,
            PruneSet::empty(),
            SupervisorPolicy {
                max_respawns: 0,
                window: 100,
            },
        )
    });
    assert_eq!(rep.failures.len(), 1);
    assert_eq!(rep.failures[0].shard, 1);
    assert!(rep.is_degraded());
    // Logical event count stays exact; the dead shard's traffic is split
    // disjointly between the two loss buckets.
    assert_eq!(rep.stats.events, trace.len() as u64);
    assert!(rep.stats.events_lost + rep.stats.dropped > 0);
    let expected = restrict_to_healthy(&clean, &rep, shards);
    assert_eq!(race_signature(&rep), expected);
}
