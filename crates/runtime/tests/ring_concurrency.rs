//! Concurrency tests for the SPSC ring primitive.
//!
//! The build container has no network access, so `loom`/`shuttle`
//! cannot be used. This file substitutes two attacks that together
//! cover what a loom run would:
//!
//! 1. **An exhaustive interleaving model.** The ring's Lamport protocol
//!    (monotonic `head`/`tail` cursors, slot write *before* tail
//!    publish, slot take *before* head publish) is re-expressed as two
//!    explicit step machines over shared state, and a DFS explores
//!    *every* interleaving of their micro-steps for small
//!    capacity × item-count configurations, asserting no lost,
//!    duplicated, or reordered items, correct wrap-around, and correct
//!    close-then-drain semantics on every path. The model assumes each
//!    micro-step is atomic and reads are coherent — which the real type
//!    guarantees with its Acquire/Release cursor pairs (publish-with-
//!    Release / observe-with-Acquire is the classic message-passing
//!    pattern) plus mutexed slots.
//! 2. **Real-thread stress runs** on the actual `Spsc<T>` with tiny
//!    capacities, exercising the condvar park/notify paths (full ring,
//!    empty ring, close racing a parked peer) thousands of times.
//!
//! A nightly TSan CI job additionally runs these tests under
//! ThreadSanitizer, which checks the real atomics rather than the
//! model's idealization of them.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use dgrace_runtime::Spsc;

// ---------------------------------------------------------------------
// Part 1: exhaustive interleaving model of the SPSC protocol.
// ---------------------------------------------------------------------

/// Shared ring state as the model sees it: exactly the fields the real
/// type shares between the two threads.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Shared {
    head: usize,
    tail: usize,
    closed: bool,
    slots: Vec<Option<usize>>,
}

/// Producer program counter. One `push` is three micro-steps (capacity
/// check on an observed `head`, slot write, tail publish), mirroring
/// the real `try_push`; `Close` models `close()` after the last item.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ProdPc {
    /// Load `head`, check capacity (blocks while full).
    Check,
    /// Write the next item into `slots[tail % cap]`.
    WriteSlot,
    /// Publish `tail + 1`.
    PublishTail,
    /// Set `closed` (after the final item).
    Close,
    Done,
}

/// Consumer program counter: one `pop` is three micro-steps (emptiness
/// check on an observed `tail`, slot take, head publish).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ConsPc {
    /// Load `tail`, check emptiness (blocks while empty and open;
    /// terminates when empty and closed).
    Check,
    /// Take `slots[head % cap]`.
    TakeSlot,
    /// Publish `head + 1`.
    PublishHead,
    Done,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct ModelState {
    shared: Shared,
    prod: ProdPc,
    /// Next item the producer will push (items are 0..total).
    next: usize,
    cons: ConsPc,
    /// Item taken by `TakeSlot`, consumed by `PublishHead`.
    carried: Option<usize>,
    /// Everything the consumer has received, in order.
    got: Vec<usize>,
}

/// Whether a micro-step of `who` can run (a blocked actor is simply not
/// schedulable — this models the park/notify edge: the real thread
/// re-runs the same check when woken by the state change that enables
/// it here).
fn enabled(s: &ModelState, who: usize, cap: usize, total: usize) -> bool {
    if who == 0 {
        match s.prod {
            ProdPc::Check => {
                debug_assert!(s.next < total);
                // Blocks while full; the check step itself is always
                // atomic (load + compare).
                s.shared.tail - s.shared.head < cap
            }
            ProdPc::Done => false,
            _ => true,
        }
    } else {
        match s.cons {
            // `Check` on an empty open ring blocks; on an empty closed
            // ring it is *enabled* and terminates the consumer.
            ConsPc::Check => s.shared.head != s.shared.tail || s.shared.closed,
            ConsPc::Done => false,
            _ => true,
        }
    }
}

/// Executes one micro-step of `who`, returning the successor state.
fn step(mut s: ModelState, who: usize, cap: usize, total: usize) -> ModelState {
    if who == 0 {
        match s.prod {
            ProdPc::Check => {
                assert!(s.shared.tail - s.shared.head < cap, "scheduled while full");
                s.prod = ProdPc::WriteSlot;
            }
            ProdPc::WriteSlot => {
                let slot = &mut s.shared.slots[s.shared.tail % cap];
                assert!(
                    slot.is_none(),
                    "producer must never overwrite an undrained slot"
                );
                *slot = Some(s.next);
                s.prod = ProdPc::PublishTail;
            }
            ProdPc::PublishTail => {
                s.shared.tail += 1;
                s.next += 1;
                s.prod = if s.next == total {
                    ProdPc::Close
                } else {
                    ProdPc::Check
                };
            }
            ProdPc::Close => {
                s.shared.closed = true;
                s.prod = ProdPc::Done;
            }
            ProdPc::Done => unreachable!(),
        }
    } else {
        match s.cons {
            ConsPc::Check => {
                if s.shared.head == s.shared.tail {
                    assert!(s.shared.closed, "scheduled while empty and open");
                    s.cons = ConsPc::Done;
                } else {
                    s.cons = ConsPc::TakeSlot;
                }
            }
            ConsPc::TakeSlot => {
                let v = s.shared.slots[s.shared.head % cap].take();
                assert!(
                    v.is_some(),
                    "consumer observed a published slot that was empty"
                );
                s.carried = v;
                s.cons = ConsPc::PublishHead;
            }
            ConsPc::PublishHead => {
                s.shared.head += 1;
                s.got.push(s.carried.take().expect("carried item"));
                s.cons = ConsPc::Check;
            }
            ConsPc::Done => unreachable!(),
        }
    }
    s
}

/// DFS over every interleaving of producer and consumer micro-steps.
/// Returns the number of distinct states visited (a branching witness).
fn explore(cap: usize, total: usize) -> usize {
    let init = ModelState {
        shared: Shared {
            head: 0,
            tail: 0,
            closed: false,
            slots: vec![None; cap],
        },
        prod: if total == 0 {
            ProdPc::Close
        } else {
            ProdPc::Check
        },
        next: 0,
        cons: ConsPc::Check,
        carried: None,
        got: Vec::new(),
    };
    let mut visited: HashSet<ModelState> = HashSet::new();
    let mut stack = vec![init];
    let mut terminals = 0usize;
    while let Some(s) = stack.pop() {
        if !visited.insert(s.clone()) {
            continue;
        }
        let runnable: Vec<usize> = (0..2).filter(|&who| enabled(&s, who, cap, total)).collect();
        if runnable.is_empty() {
            // Terminal state: both sides done — never a deadlock.
            assert_eq!(s.prod, ProdPc::Done, "producer finished (cap={cap})");
            assert_eq!(s.cons, ConsPc::Done, "consumer finished (cap={cap})");
            // Exactly the pushed items, in order: nothing lost,
            // duplicated, reordered, or invented.
            assert_eq!(
                s.got,
                (0..total).collect::<Vec<_>>(),
                "cap={cap} total={total}"
            );
            assert_eq!(s.shared.head, total, "every slot drained");
            assert!(s.shared.slots.iter().all(Option::is_none));
            terminals += 1;
            continue;
        }
        for who in runnable {
            stack.push(step(s.clone(), who, cap, total));
        }
    }
    assert!(terminals > 0, "at least one complete schedule");
    visited.len()
}

#[test]
fn model_every_interleaving_is_exact() {
    // Small configs are exhaustive yet cover multiple wrap-arounds:
    // cap=1 wraps on every push, cap=2/3 interleave partial fills.
    for cap in 1..=3usize {
        for total in 0..=6usize {
            explore(cap, total);
        }
    }
}

#[test]
fn model_actually_branches() {
    // Sanity-check the checker itself: the state space must branch
    // (producer and consumer genuinely interleave), otherwise the
    // assertions above would be vacuous.
    let linear = explore(1, 1);
    let branchy = explore(3, 6);
    assert!(branchy > 10 * linear, "{branchy} vs {linear}");
}

// ---------------------------------------------------------------------
// Part 2: real-thread stress on the actual type.
// ---------------------------------------------------------------------

/// Pushes `total` items through a `cap`-slot ring with a racing
/// consumer and checks the exact sequence arrives.
fn stress_round(cap: usize, total: u32) {
    let ring = Arc::new(Spsc::new(cap));
    let consumer = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || {
            let mut got = Vec::with_capacity(total as usize);
            while let Some(v) = ring.pop() {
                got.push(v);
            }
            got
        })
    };
    for i in 0..total {
        ring.push(i).expect("ring closed early");
    }
    ring.close();
    let got = consumer.join().expect("consumer panicked");
    assert_eq!(got, (0..total).collect::<Vec<_>>(), "cap={cap}");
}

#[test]
fn stress_tiny_capacities_many_items() {
    // cap=1 forces a park on nearly every operation; larger caps mix
    // fast-path and parked operations.
    for cap in [1usize, 2, 3, 7, 64] {
        stress_round(cap, 20_000);
    }
}

#[test]
fn stress_close_races_parked_consumer() {
    // Close with a consumer likely parked on empty: must terminate with
    // exactly the items pushed, every time.
    for round in 0..200u32 {
        let ring = Arc::new(Spsc::new(4));
        let consumer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut n = 0u32;
                while ring.pop().is_some() {
                    n += 1;
                }
                n
            })
        };
        let pushed = round % 7;
        for i in 0..pushed {
            ring.push(i).unwrap();
        }
        ring.close();
        assert_eq!(consumer.join().unwrap(), pushed);
    }
}

#[test]
fn stress_close_races_parked_producer() {
    // A producer parked on a full ring must observe the close and give
    // the rejected item back instead of hanging.
    for _ in 0..200 {
        let ring = Arc::new(Spsc::new(1));
        ring.push(0u32).unwrap();
        let producer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || ring.push(1))
        };
        // Unblock it either by popping or by closing; both must
        // terminate the producer promptly.
        ring.close();
        let res = producer.join().unwrap();
        assert_eq!(res, Err(1));
        assert_eq!(ring.pop(), Some(0));
        assert_eq!(ring.pop(), None);
    }
}
