//! A hybrid lockset + happens-before detector (Intel Inspector XE class).

use std::collections::{HashMap, HashSet};

use dgrace_detectors::{AccessKind, Detector, HbState, RaceKind, RaceReport, Report};
use dgrace_shadow::{MemClass, MemoryModel};
use dgrace_trace::{Addr, Event, LockId};
use dgrace_vc::{Epoch, Tid, VectorClock};

#[derive(Clone, Debug, Default)]
struct LocEntry {
    /// Full per-thread read history (DJIT+-style: heavier than epochs).
    reads: VectorClock,
    /// Full per-thread write history.
    writes: VectorClock,
    /// Candidate lockset (for classification, Eraser-style).
    lockset: HashSet<LockId>,
    lockset_valid: bool,
    /// Reported racing pairs `(prev_tid, cur_tid, is_prev_write)` — the
    /// stand-in for Inspector's instruction-pointer/timeline keying,
    /// which can report the same location several times.
    reported: Vec<(Tid, Tid, bool)>,
}

impl LocEntry {
    fn bytes(&self) -> usize {
        // Two full VCs, a lockset, and the report key list: the heavy
        // footprint that gives Inspector its ~2.8× memory vs dynamic.
        64 + self.reads.payload_bytes()
            + self.writes.payload_bytes()
            + self.lockset.len() * 4
            + self.reported.len() * 12
    }
}

/// A hybrid detector in the mold the paper attributes to industrial
/// tools (§VI): happens-before race checks, with Eraser-style locksets
/// maintained for classification, full per-location vector clocks, and
/// race keying by *access pair* rather than by location.
///
/// Compared with FastTrack-dynamic it is slower (full-VC comparisons) and
/// heavier (full VCs + locksets per location) but equally precise on
/// actually-occurring races — matching Table 6's observed shape for
/// Inspector XE.
#[derive(Debug, Default)]
pub struct HybridDetector {
    hb: HbState,
    held: HashMap<Tid, HashSet<LockId>>,
    table: HashMap<Addr, LocEntry>,
    races: Vec<RaceReport>,
    model: MemoryModel,
    loc_bytes: usize,
    events: u64,
    accesses: u64,
    same_epoch: u64,
    event_index: u64,
}

impl HybridDetector {
    /// Creates a hybrid detector.
    pub fn new() -> Self {
        Self::default()
    }

    fn on_access(&mut self, tid: Tid, addr: Addr, kind: AccessKind) {
        self.accesses += 1;
        let first = match kind {
            AccessKind::Read => self.hb.first_read_in_epoch(tid, addr),
            AccessKind::Write => self.hb.first_write_in_epoch(tid, addr),
        };
        if !first {
            self.same_epoch += 1;
            return;
        }
        let now = self.hb.clock(tid).clone();
        let my_epoch = Epoch::new(now.get(tid), tid);
        let held = self.held.entry(tid).or_default().clone();

        let is_new = !self.table.contains_key(&addr);
        let entry = self.table.entry(addr).or_default();
        let before = if is_new { 0 } else { entry.bytes() };

        // Lockset refinement (classification metadata).
        if !entry.lockset_valid {
            entry.lockset = held.clone();
            entry.lockset_valid = true;
        } else {
            entry.lockset.retain(|l| held.contains(l));
        }

        // Happens-before race checks against the *full* histories; every
        // new racing pair is reported (not only the first per location).
        let mut new_races = Vec::new();
        {
            let mut check = |hist: &VectorClock, prev_is_write: bool| {
                for (t, c) in hist.iter() {
                    if t == tid || c <= now.get(t) {
                        continue;
                    }
                    let key = (t, tid, prev_is_write);
                    if entry.reported.contains(&key) {
                        continue;
                    }
                    entry.reported.push(key);
                    let race_kind = match (prev_is_write, kind) {
                        (true, AccessKind::Read) => RaceKind::WriteRead,
                        (true, AccessKind::Write) => RaceKind::WriteWrite,
                        (false, AccessKind::Write) => RaceKind::ReadWrite,
                        (false, AccessKind::Read) => continue,
                    };
                    new_races.push(RaceReport {
                        addr,
                        kind: race_kind,
                        current: my_epoch,
                        previous: Epoch::new(c, t),
                        event_index: None,
                        share_count: 1,
                        tainted: false,
                    });
                }
            };
            check(&entry.writes.clone(), true);
            if kind == AccessKind::Write {
                check(&entry.reads.clone(), false);
            }
        }
        for mut r in new_races {
            r.event_index = Some(self.event_index);
            self.races.push(r);
        }

        match kind {
            AccessKind::Read => entry.reads.set(tid, my_epoch.clock),
            AccessKind::Write => entry.writes.set(tid, my_epoch.clock),
        }
        let after = entry.bytes();
        self.loc_bytes = self.loc_bytes + after - before;
        self.update_model();
    }

    fn update_model(&mut self) {
        self.model.set(MemClass::VectorClock, self.loc_bytes);
        self.model.set(MemClass::Bitmap, self.hb.bitmap_bytes());
        self.model.set_vc_count(self.table.len() * 2);
    }
}

impl Detector for HybridDetector {
    fn name(&self) -> String {
        "hybrid-inspector".to_string()
    }

    fn on_event(&mut self, ev: &Event) {
        self.events += 1;
        match *ev {
            Event::Read { tid, addr, .. } => self.on_access(tid, addr, AccessKind::Read),
            Event::Write { tid, addr, .. } => self.on_access(tid, addr, AccessKind::Write),
            Event::Acquire { tid, lock } => {
                self.held.entry(tid).or_default().insert(lock);
                self.hb.on_sync(ev);
            }
            Event::Release { tid, lock } => {
                self.held.entry(tid).or_default().remove(&lock);
                self.hb.on_sync(ev);
            }
            Event::Free { addr, size, .. } => {
                let mut freed = 0usize;
                self.table.retain(|a, e| {
                    let keep = a.0 < addr.0 || a.0 >= addr.0 + size;
                    if !keep {
                        freed += e.bytes();
                    }
                    keep
                });
                self.loc_bytes -= freed;
                self.update_model();
            }
            Event::Alloc { .. } => {}
            _ => {
                self.hb.on_sync(ev);
            }
        }
        self.event_index += 1;
    }

    fn finish(&mut self) -> Report {
        let mut rep = Report {
            detector: self.name(),
            races: std::mem::take(&mut self.races),
            ..Report::default()
        };
        rep.stats.events = self.events;
        rep.stats.accesses = self.accesses;
        rep.stats.same_epoch = self.same_epoch;
        rep.stats.peak_vc_count = self.model.peak_vc_count();
        rep.stats.peak_vc_bytes = self.model.peak(MemClass::VectorClock);
        rep.stats.peak_bitmap_bytes = self.hb.peak_bitmap_bytes();
        rep.stats.peak_total_bytes = self.model.peak_total();
        *self = HybridDetector::default();
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::{DetectorExt, FastTrack};
    use dgrace_trace::{AccessSize, TraceBuilder};

    const X: u64 = 0x5000;

    #[test]
    fn detects_races_like_fasttrack() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U32)
            .write(1u32, X, AccessSize::U32)
            .locked(0u32, 0u32, |t| {
                t.write(0u32, X + 8, AccessSize::U32);
            })
            .locked(1u32, 0u32, |t| {
                t.read(1u32, X + 8, AccessSize::U32);
            });
        let trace = b.build();
        let hy = HybridDetector::new().run(&trace);
        let ft = FastTrack::new().run(&trace);
        assert_eq!(hy.race_addrs(), ft.race_addrs());
    }

    #[test]
    fn no_false_alarm_on_fork_join() {
        // Unlike pure LockSet, the happens-before component understands
        // fork/join ordering.
        let mut b = TraceBuilder::new();
        b.write(0u32, X, AccessSize::U32)
            .fork(0u32, 1u32)
            .write(1u32, X, AccessSize::U32)
            .join(0u32, 1u32)
            .write(0u32, X, AccessSize::U32);
        assert!(HybridDetector::new().run(&b.build()).races.is_empty());
    }

    #[test]
    fn may_report_same_location_multiple_times() {
        // Three threads race pairwise on one location: pair keying
        // reports more than one race for the address (Inspector's
        // multi-report behaviour).
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .fork(0u32, 2u32)
            .write(1u32, X, AccessSize::U32)
            .write(2u32, X, AccessSize::U32)
            .release(1u32, 7u32)
            .write(1u32, X, AccessSize::U32);
        let rep = HybridDetector::new().run(&b.build());
        assert!(
            rep.races.len() >= 2,
            "pair keying should report multiple races: {:?}",
            rep.races
        );
        assert!(rep.races.iter().all(|r| r.addr == Addr(X)));
    }

    #[test]
    fn heavier_memory_than_fasttrack() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        // Many locations accessed by both threads under a lock.
        for i in 0..64u64 {
            b.locked(0u32, 0u32, |t| {
                t.write(0u32, X + i * 4, AccessSize::U32);
            });
            b.locked(1u32, 0u32, |t| {
                t.read(1u32, X + i * 4, AccessSize::U32);
            });
        }
        let trace = b.build();
        let hy = HybridDetector::new().run(&trace);
        let ft = FastTrack::new().run(&trace);
        assert!(hy.races.is_empty());
        assert!(
            hy.stats.peak_vc_bytes > ft.stats.peak_vc_bytes,
            "hybrid {} vs fasttrack {}",
            hy.stats.peak_vc_bytes,
            ft.stats.peak_vc_bytes
        );
    }

    #[test]
    fn lockset_metadata_maintained() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        for t in [0u32, 1u32] {
            b.locked(t, 3u32, |bb| {
                bb.write(t, X, AccessSize::U32);
            });
        }
        let mut det = HybridDetector::new();
        for ev in b.build().iter() {
            det.on_event(ev);
        }
        let entry = det.table.get(&Addr(X)).unwrap();
        assert!(entry.lockset.contains(&LockId(3)));
    }
}
