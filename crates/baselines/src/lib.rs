//! Baseline race detectors for the paper's case studies (§V.C, Table 6).
//!
//! The paper compares its dynamic-granularity FastTrack against two
//! industrial tools. Neither can be linked into a Rust workspace, so this
//! crate reimplements their *algorithm classes* (the substitution is
//! documented in `DESIGN.md` §3):
//!
//! * [`SegmentDetector`] — Valgrind **DRD**'s class. DRD's race core is
//!   based on RecPlay: the execution is divided into *segments* (code
//!   between successive synchronization operations); each segment
//!   collects its accessed addresses in bitmaps, and concurrent segments
//!   with conflicting bitmaps signal races. No per-location vector
//!   clocks: less memory than FastTrack, but set operations per access
//!   make it slower — exactly the profile Table 6 reports.
//! * [`LockSetDetector`] — Eraser's LockSet algorithm (§I). Reports
//!   potential races whenever a shared location is not consistently
//!   protected by at least one common lock; fast but prone to false
//!   alarms on lock-free synchronization idioms.
//! * [`HybridDetector`] — Intel **Inspector XE**'s class: a hybrid
//!   lockset + happens-before checker. Keeps full per-location access
//!   history (heavier than FastTrack's epochs — Inspector's ~2.8× memory
//!   footprint) and keys race reports by access pair rather than by
//!   location, so the same location can be reported more than once
//!   (Inspector's instruction-pointer/timeline keying).

//! ```
//! use dgrace_baselines::{LockSetDetector, SegmentDetector};
//! use dgrace_detectors::DetectorExt;
//! use dgrace_trace::{AccessSize, TraceBuilder};
//!
//! // fork/join ordering without locks: fine for happens-before
//! // detectors, a false alarm for the LockSet discipline checker.
//! let mut b = TraceBuilder::new();
//! b.write(0u32, 0x10u64, AccessSize::U32)
//!     .fork(0u32, 1u32)
//!     .write(1u32, 0x10u64, AccessSize::U32)
//!     .join(0u32, 1u32)
//!     .write(0u32, 0x10u64, AccessSize::U32);
//! let trace = b.build();
//! assert!(SegmentDetector::new().run(&trace).races.is_empty());
//! assert_eq!(LockSetDetector::new().run(&trace).races.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hybrid;
mod lockset;
mod segment;

pub use hybrid::HybridDetector;
pub use lockset::{HeldLocks, LockSetDetector, LocksetState};
pub use segment::SegmentDetector;
