//! The segment-comparison detector (RecPlay / Valgrind DRD class).

use std::collections::HashSet;

use dgrace_detectors::{AccessKind, Detector, HbState, RaceKind, RaceReport, Report};
use dgrace_shadow::{MemClass, MemoryModel};
use dgrace_trace::{Addr, Event};
use dgrace_vc::{Epoch, Tid, VectorClock};

/// One segment: the accesses a thread performed between two successive
/// synchronization operations, plus the vector clock identifying the
/// segment's position in the happens-before order.
#[derive(Clone, Debug)]
struct Segment {
    tid: Tid,
    /// The owning thread's clock for the duration of the segment.
    vc: VectorClock,
    /// The thread's own epoch during this segment.
    epoch: Epoch,
    reads: HashSet<Addr>,
    writes: HashSet<Addr>,
}

impl Segment {
    fn new(tid: Tid, vc: VectorClock) -> Self {
        let epoch = Epoch::new(vc.get(tid), tid);
        Segment {
            tid,
            vc,
            epoch,
            reads: HashSet::new(),
            writes: HashSet::new(),
        }
    }

    /// Modeled bytes: header + VC payload + one byte per recorded
    /// address (bitmap-style storage, as in DRD).
    fn bytes(&self) -> usize {
        48 + self.vc.payload_bytes() + self.reads.len() + self.writes.len()
    }

    fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// The first happens-before method of §I: "a segment is defined as a code
/// block between two successive synchronization operations and shared
/// memory accesses are collected in a bitmap for each segment ... If two
/// concurrent segments contain [conflicting] shared memory accesses, the
/// accesses are reported as data races."
///
/// This is the algorithm class of Valgrind DRD. It keeps **no**
/// per-location vector clocks — memory scales with the number of live
/// segments — but every access must be checked against the bitmaps of all
/// concurrent segments, which costs time.
#[derive(Debug, Default)]
pub struct SegmentDetector {
    hb: HbState,
    current: Vec<Option<Segment>>,
    finished: Vec<Segment>,
    /// Threads that may still perform accesses (forked or implicit main,
    /// not yet joined); only their knowledge matters for segment GC.
    alive: HashSet<Tid>,
    raced: HashSet<Addr>,
    races: Vec<RaceReport>,
    model: MemoryModel,
    events: u64,
    accesses: u64,
    same_epoch: u64,
    event_index: u64,
    /// Accumulated bytes of current+finished segments (kept incrementally
    /// where cheap; recomputed on segment retirement).
    seg_bytes: usize,
}

impl SegmentDetector {
    /// Creates a segment detector.
    pub fn new() -> Self {
        Self::default()
    }

    fn current_mut(&mut self, t: Tid) -> &mut Segment {
        let i = t.index();
        if i >= self.current.len() {
            self.current.resize_with(i + 1, || None);
        }
        if self.current[i].is_none() {
            let vc = self.hb.clock(t).clone();
            self.current[i] = Some(Segment::new(t, vc));
        }
        self.current[i].as_mut().expect("just created")
    }

    fn on_access(&mut self, tid: Tid, addr: Addr, kind: AccessKind) {
        self.accesses += 1;
        // Segment-local filter: an address already recorded in the
        // current segment needs no re-checking (same-epoch analog).
        {
            let seg = self.current_mut(tid);
            let seen = match kind {
                AccessKind::Read => seg.reads.contains(&addr) || seg.writes.contains(&addr),
                AccessKind::Write => seg.writes.contains(&addr),
            };
            if seen {
                self.same_epoch += 1;
                return;
            }
        }

        let now = self.hb.clock(tid).clone();
        let my_epoch = Epoch::new(now.get(tid), tid);

        // Check against every concurrent segment of another thread.
        if !self.raced.contains(&addr) {
            let mut witness: Option<(RaceKind, Epoch)> = None;
            let iter = self.finished.iter().chain(self.current.iter().flatten());
            for seg in iter {
                if seg.tid == tid {
                    continue;
                }
                // seg happens-before us iff its clock is known to us.
                if seg.epoch.clock <= now.get(seg.tid) {
                    continue;
                }
                let conflict = match kind {
                    AccessKind::Read => seg.writes.contains(&addr).then_some(RaceKind::WriteRead),
                    AccessKind::Write => {
                        if seg.writes.contains(&addr) {
                            Some(RaceKind::WriteWrite)
                        } else if seg.reads.contains(&addr) {
                            Some(RaceKind::ReadWrite)
                        } else {
                            None
                        }
                    }
                };
                if let Some(k) = conflict {
                    witness = Some((k, seg.epoch));
                    break;
                }
            }
            if let Some((k, previous)) = witness {
                self.raced.insert(addr);
                self.races.push(RaceReport {
                    addr,
                    kind: k,
                    current: my_epoch,
                    previous,
                    event_index: Some(self.event_index),
                    share_count: 1,
                    tainted: false,
                });
            }
        }

        let seg = self.current_mut(tid);
        match kind {
            AccessKind::Read => seg.reads.insert(addr),
            AccessKind::Write => seg.writes.insert(addr),
        };
        self.seg_bytes += 1;
        self.update_model();
    }

    /// Ends the current segments of every thread whose clock advanced.
    fn retire_segments(&mut self, ev: &Event) {
        let ended: &[Tid] = match *ev {
            Event::Acquire { tid, .. }
            | Event::Release { tid, .. }
            | Event::AcquireRead { tid, .. }
            | Event::ReleaseRead { tid, .. }
            | Event::CvSignal { tid, .. }
            | Event::CvWait { tid, .. }
            | Event::BarrierArrive { tid, .. }
            | Event::BarrierDepart { tid, .. } => &[tid],
            Event::Fork { parent, child } => &[parent, child],
            Event::Join { parent, child } => &[parent, child],
            _ => &[],
        };
        for &t in ended {
            if let Some(seg) = self.current.get_mut(t.index()).and_then(Option::take) {
                if !seg.is_empty() {
                    self.finished.push(seg);
                }
            }
        }
        self.gc();
        self.recount_bytes();
    }

    /// Drops finished segments whose epoch is already known to every
    /// alive thread — they can never again participate in a race
    /// ("merging segments" / segment discarding, the optimization of
    /// [21, 22]).
    fn gc(&mut self) {
        let alive: Vec<Tid> = self.alive.iter().copied().collect();
        if alive.is_empty() {
            return;
        }
        let mut lower: Option<VectorClock> = None;
        for t in alive {
            let vc = self.hb.clock(t).clone();
            lower = Some(match lower {
                None => vc,
                Some(prev) => {
                    // Element-wise minimum.
                    let width = prev.width().max(vc.width());
                    let mut min = VectorClock::new();
                    for i in 0..width {
                        let ti = Tid::from(i);
                        min.set(ti, prev.get(ti).min(vc.get(ti)));
                    }
                    min
                }
            });
        }
        let lower = lower.expect("nonempty alive set");
        self.finished
            .retain(|seg| seg.epoch.clock > lower.get(seg.tid));
    }

    fn recount_bytes(&mut self) {
        self.seg_bytes = self
            .finished
            .iter()
            .chain(self.current.iter().flatten())
            .map(Segment::bytes)
            .sum();
        self.update_model();
    }

    fn update_model(&mut self) {
        // Segment bitmaps are this detector's dominant cost; its "vector
        // clock" budget is one VC per live segment (already included in
        // Segment::bytes, reported under Bitmap for Table 6's memory
        // column; Hash stays zero — there is no per-location index).
        self.model.set(MemClass::Bitmap, self.seg_bytes);
        self.model
            .set_vc_count(self.finished.len() + self.current.iter().flatten().count());
    }
}

impl Detector for SegmentDetector {
    fn name(&self) -> String {
        "segment-drd".to_string()
    }

    fn on_event(&mut self, ev: &Event) {
        self.events += 1;
        self.alive.insert(ev.tid());
        if let Event::Fork { child, .. } = *ev {
            self.alive.insert(child);
        }
        if let Event::Join { child, .. } = *ev {
            self.alive.remove(&child);
        }
        match *ev {
            Event::Read { tid, addr, .. } => self.on_access(tid, addr, AccessKind::Read),
            Event::Write { tid, addr, .. } => self.on_access(tid, addr, AccessKind::Write),
            Event::Free { addr, size, .. } => {
                for seg in self
                    .finished
                    .iter_mut()
                    .chain(self.current.iter_mut().flatten())
                {
                    seg.reads.retain(|a| a.0 < addr.0 || a.0 >= addr.0 + size);
                    seg.writes.retain(|a| a.0 < addr.0 || a.0 >= addr.0 + size);
                }
                self.recount_bytes();
            }
            Event::Alloc { .. } => {}
            _ => {
                self.hb.on_sync(ev);
                self.retire_segments(ev);
            }
        }
        self.event_index += 1;
    }

    fn finish(&mut self) -> Report {
        let mut rep = Report {
            detector: self.name(),
            races: std::mem::take(&mut self.races),
            ..Report::default()
        };
        rep.stats.events = self.events;
        rep.stats.accesses = self.accesses;
        rep.stats.same_epoch = self.same_epoch;
        rep.stats.peak_vc_count = self.model.peak_vc_count();
        rep.stats.peak_bitmap_bytes = self.model.peak(MemClass::Bitmap);
        rep.stats.peak_total_bytes = self.model.peak_total();
        *self = SegmentDetector::default();
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::{DetectorExt, FastTrack};
    use dgrace_trace::{AccessSize, TraceBuilder};

    const X: u64 = 0x3000;

    #[test]
    fn detects_write_write_race() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U32)
            .write(1u32, X, AccessSize::U32);
        let rep = SegmentDetector::new().run(&b.build());
        assert_eq!(rep.races.len(), 1);
        assert_eq!(rep.races[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn lock_discipline_is_race_free() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        for t in [0u32, 1u32, 0u32, 1u32] {
            b.locked(t, 0u32, |b| {
                b.read(t, X, AccessSize::U32).write(t, X, AccessSize::U32);
            });
        }
        assert!(SegmentDetector::new().run(&b.build()).races.is_empty());
    }

    #[test]
    fn racy_read_against_finished_segment() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U32)
            // T0 syncs with a third party; its write segment is finished
            // but still concurrent with T1.
            .release(0u32, 5u32)
            .read(1u32, X, AccessSize::U32);
        let rep = SegmentDetector::new().run(&b.build());
        assert_eq!(rep.races.len(), 1);
        assert_eq!(rep.races[0].kind, RaceKind::WriteRead);
    }

    #[test]
    fn agrees_with_fasttrack_on_location_sets() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U32)
            .write(1u32, X, AccessSize::U32)
            .locked(0u32, 0u32, |t| {
                t.write(0u32, X + 64, AccessSize::U32);
            })
            .locked(1u32, 0u32, |t| {
                t.read(1u32, X + 64, AccessSize::U32);
            })
            .read(0u32, X + 128, AccessSize::U32)
            .write(1u32, X + 128, AccessSize::U32);
        let trace = b.build();
        let seg = SegmentDetector::new().run(&trace);
        let ft = FastTrack::new().run(&trace);
        assert_eq!(seg.race_addrs(), ft.race_addrs());
    }

    #[test]
    fn gc_discards_ordered_segments() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        // Tight lock-step synchronization: segments must not accumulate.
        for _ in 0..50 {
            b.locked(0u32, 0u32, |t| {
                t.write(0u32, X, AccessSize::U32);
            });
            b.locked(1u32, 0u32, |t| {
                t.write(1u32, X, AccessSize::U32);
            });
        }
        let rep = SegmentDetector::new().run(&b.build());
        assert!(rep.races.is_empty());
        // Peak segment count stays small thanks to GC.
        assert!(
            rep.stats.peak_vc_count < 20,
            "peak segments = {}",
            rep.stats.peak_vc_count
        );
    }

    #[test]
    fn no_per_location_hash_cost() {
        let mut b = TraceBuilder::new();
        b.write_block(0u32, X, 1024, AccessSize::U32);
        let rep = SegmentDetector::new().run(&b.build());
        assert_eq!(rep.stats.peak_hash_bytes, 0);
        assert!(rep.stats.peak_bitmap_bytes > 0);
    }

    #[test]
    fn free_purges_addresses() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U32)
            .free(0u32, X, 4)
            .write(1u32, X, AccessSize::U32);
        assert!(SegmentDetector::new().run(&b.build()).races.is_empty());
    }
}
