//! Eraser's LockSet algorithm.

use std::collections::{HashMap, HashSet};

use dgrace_detectors::{AccessKind, Detector, RaceKind, RaceReport, Report};
use dgrace_shadow::{MemClass, MemoryModel};
use dgrace_trace::{Addr, Event, LockId};
use dgrace_vc::{Epoch, Tid};

/// Per-thread held-lock bookkeeping, shared between the Eraser checker
/// here and the ahead-of-time analysis in `dgrace-analysis`.
///
/// Exclusive (write) holds and shared (read) holds are tracked
/// separately: Eraser's candidate sets use the union (a read hold is
/// still a discipline), while the analyzer's prune proof may only count
/// exclusive holds (two read holders do not order their accesses).
#[derive(Clone, Debug, Default)]
pub struct HeldLocks {
    exclusive: HashMap<Tid, HashSet<LockId>>,
    read: HashMap<Tid, HashSet<LockId>>,
}

impl HeldLocks {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates the tracker from one event; non-lock events are ignored.
    pub fn apply(&mut self, ev: &Event) {
        match *ev {
            Event::Acquire { tid, lock } => {
                self.exclusive.entry(tid).or_default().insert(lock);
            }
            Event::Release { tid, lock } => {
                self.exclusive.entry(tid).or_default().remove(&lock);
            }
            Event::AcquireRead { tid, lock } => {
                self.read.entry(tid).or_default().insert(lock);
            }
            Event::ReleaseRead { tid, lock } => {
                self.read.entry(tid).or_default().remove(&lock);
            }
            _ => {}
        }
    }

    /// The locks `tid` currently holds exclusively, if any.
    pub fn exclusive(&self, tid: Tid) -> Option<&HashSet<LockId>> {
        self.exclusive.get(&tid).filter(|s| !s.is_empty())
    }

    /// All locks `tid` holds in any mode (Eraser's candidate universe).
    pub fn any_mode(&self, tid: Tid) -> HashSet<LockId> {
        let mut out = self.exclusive.get(&tid).cloned().unwrap_or_default();
        if let Some(r) = self.read.get(&tid) {
            out.extend(r.iter().copied());
        }
        out
    }
}

/// Eraser's per-location ownership state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocksetState {
    /// Never accessed.
    Virgin,
    /// Accessed by a single thread so far (no locking required).
    Exclusive(Tid),
    /// Read by several threads; writes all ordered (lockset tracked but
    /// empty lockset is not yet reported).
    Shared,
    /// Read and written by several threads; empty lockset ⇒ race report.
    SharedModified,
}

#[derive(Clone, Debug)]
struct LocEntry {
    state: LocksetState,
    /// Candidate lockset C(x).
    lockset: HashSet<LockId>,
    /// Last writer (for the report's "previous access" field).
    last_writer: Option<Tid>,
    reported: bool,
}

/// A faithful implementation of the Eraser LockSet discipline checker
/// ("data races are reported when shared variable accesses violate a
/// specified locking discipline", §I).
///
/// Being a discipline checker, it flags *potential* races — including
/// ones that did not happen in this execution — and produces false alarms
/// for synchronization expressed through fork/join or condition signaling
/// rather than a common lock. The paper's hybrid detectors exist
/// precisely to filter those.
#[derive(Debug, Default)]
pub struct LockSetDetector {
    held: HeldLocks,
    table: HashMap<Addr, LocEntry>,
    races: Vec<RaceReport>,
    model: MemoryModel,
    loc_bytes: usize,
    events: u64,
    accesses: u64,
    event_index: u64,
}

impl LockSetDetector {
    /// Creates a LockSet detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current Eraser state of a location (for tests/diagnostics).
    pub fn state_of(&self, addr: Addr) -> LocksetState {
        self.table
            .get(&addr)
            .map(|e| e.state)
            .unwrap_or(LocksetState::Virgin)
    }

    fn on_access(&mut self, tid: Tid, addr: Addr, kind: AccessKind) {
        self.accesses += 1;
        let held = self.held.any_mode(tid);
        let is_new = !self.table.contains_key(&addr);
        let entry = self.table.entry(addr).or_insert_with(|| LocEntry {
            state: LocksetState::Virgin,
            lockset: HashSet::new(),
            last_writer: None,
            reported: false,
        });
        let before = if is_new {
            0
        } else {
            32 + entry.lockset.len() * 4
        };

        // Eraser state machine.
        let new_state = match entry.state {
            LocksetState::Virgin => {
                entry.lockset = held.clone();
                LocksetState::Exclusive(tid)
            }
            LocksetState::Exclusive(owner) if owner == tid => LocksetState::Exclusive(tid),
            LocksetState::Exclusive(_) => {
                // First access from a second thread: start refining.
                entry.lockset = held.clone();
                if kind == AccessKind::Write {
                    LocksetState::SharedModified
                } else {
                    LocksetState::Shared
                }
            }
            LocksetState::Shared => {
                entry.lockset.retain(|l| held.contains(l));
                if kind == AccessKind::Write {
                    LocksetState::SharedModified
                } else {
                    LocksetState::Shared
                }
            }
            LocksetState::SharedModified => {
                entry.lockset.retain(|l| held.contains(l));
                LocksetState::SharedModified
            }
        };
        entry.state = new_state;

        if entry.state == LocksetState::SharedModified
            && entry.lockset.is_empty()
            && !entry.reported
        {
            entry.reported = true;
            let prev = entry.last_writer.unwrap_or(Tid(0));
            self.races.push(RaceReport {
                addr,
                kind: if kind == AccessKind::Write {
                    RaceKind::WriteWrite
                } else {
                    RaceKind::WriteRead
                },
                current: Epoch::new(0, tid),
                previous: Epoch::new(0, prev),
                event_index: Some(self.event_index),
                share_count: 1,
                tainted: false,
            });
        }

        if kind == AccessKind::Write {
            entry.last_writer = Some(tid);
        }
        // One lockset entry per location: header + lock ids.
        let after = 32 + entry.lockset.len() * 4;
        self.loc_bytes = self.loc_bytes + after - before;
        self.model.set(MemClass::Hash, self.loc_bytes);
    }
}

impl Detector for LockSetDetector {
    fn name(&self) -> String {
        "lockset-eraser".to_string()
    }

    fn on_event(&mut self, ev: &Event) {
        self.events += 1;
        match *ev {
            Event::Read { tid, addr, .. } => self.on_access(tid, addr, AccessKind::Read),
            Event::Write { tid, addr, .. } => self.on_access(tid, addr, AccessKind::Write),
            Event::Acquire { .. }
            | Event::AcquireRead { .. }
            | Event::Release { .. }
            | Event::ReleaseRead { .. } => {
                // Eraser counts read locks toward the candidate set too
                // (its refinement distinguishes read/write ownership; we
                // use the simpler common-lock form via `any_mode`).
                self.held.apply(ev);
            }
            Event::Free { addr, size, .. } => {
                let mut freed = 0usize;
                self.table.retain(|a, e| {
                    let keep = a.0 < addr.0 || a.0 >= addr.0 + size;
                    if !keep {
                        freed += 32 + e.lockset.len() * 4;
                    }
                    keep
                });
                self.loc_bytes -= freed;
                self.model.set(MemClass::Hash, self.loc_bytes);
            }
            _ => {}
        }
        self.event_index += 1;
    }

    fn finish(&mut self) -> Report {
        let mut rep = Report {
            detector: self.name(),
            races: std::mem::take(&mut self.races),
            ..Report::default()
        };
        rep.stats.events = self.events;
        rep.stats.accesses = self.accesses;
        rep.stats.peak_hash_bytes = self.model.peak(MemClass::Hash);
        rep.stats.peak_total_bytes = self.model.peak_total();
        *self = LockSetDetector::default();
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgrace_detectors::DetectorExt;
    use dgrace_trace::{AccessSize, TraceBuilder};

    const X: u64 = 0x4000;

    #[test]
    fn consistent_locking_passes() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32);
        for t in [0u32, 1u32] {
            b.locked(t, 0u32, |b| {
                b.read(t, X, AccessSize::U32).write(t, X, AccessSize::U32);
            });
        }
        assert!(LockSetDetector::new().run(&b.build()).races.is_empty());
    }

    #[test]
    fn unprotected_sharing_reported() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U32)
            .write(1u32, X, AccessSize::U32);
        let rep = LockSetDetector::new().run(&b.build());
        assert_eq!(rep.races.len(), 1);
    }

    #[test]
    fn inconsistent_locks_reported() {
        // Eraser only starts refining the candidate set when the variable
        // leaves the Exclusive state, so the violation surfaces at the
        // *third* access: C(x) = {L1} ∩ {L0} = ∅.
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .locked(0u32, 0u32, |t| {
                t.write(0u32, X, AccessSize::U32);
            })
            .locked(1u32, 1u32, |t| {
                t.write(1u32, X, AccessSize::U32);
            })
            .locked(0u32, 0u32, |t| {
                t.write(0u32, X, AccessSize::U32);
            });
        let rep = LockSetDetector::new().run(&b.build());
        assert_eq!(rep.races.len(), 1, "different locks → empty lockset");
    }

    #[test]
    fn fork_join_false_alarm() {
        // The known Eraser weakness: fork/join ordering without locks is
        // reported even though it is perfectly race-free.
        let mut b = TraceBuilder::new();
        b.write(0u32, X, AccessSize::U32)
            .fork(0u32, 1u32)
            .write(1u32, X, AccessSize::U32)
            .join(0u32, 1u32)
            .write(0u32, X, AccessSize::U32);
        let rep = LockSetDetector::new().run(&b.build());
        assert_eq!(rep.races.len(), 1, "Eraser flags fork/join idioms");
    }

    #[test]
    fn exclusive_single_thread_never_reported() {
        let mut b = TraceBuilder::new();
        for _ in 0..10 {
            b.write(0u32, X, AccessSize::U32);
        }
        let rep = LockSetDetector::new().run(&b.build());
        assert!(rep.races.is_empty());
    }

    #[test]
    fn read_sharing_without_writes_ok() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .read(0u32, X, AccessSize::U32)
            .read(1u32, X, AccessSize::U32);
        let mut det = LockSetDetector::new();
        let rep = det.run(&b.build());
        assert!(rep.races.is_empty());
    }

    #[test]
    fn state_machine_progression() {
        let mut det = LockSetDetector::new();
        assert_eq!(det.state_of(Addr(X)), LocksetState::Virgin);
        det.on_event(&Event::Write {
            tid: Tid(0),
            addr: Addr(X),
            size: AccessSize::U32,
        });
        assert_eq!(det.state_of(Addr(X)), LocksetState::Exclusive(Tid(0)));
        det.on_event(&Event::Read {
            tid: Tid(1),
            addr: Addr(X),
            size: AccessSize::U32,
        });
        assert_eq!(det.state_of(Addr(X)), LocksetState::Shared);
        det.on_event(&Event::Write {
            tid: Tid(1),
            addr: Addr(X),
            size: AccessSize::U32,
        });
        assert_eq!(det.state_of(Addr(X)), LocksetState::SharedModified);
    }

    #[test]
    fn free_resets_state() {
        let mut b = TraceBuilder::new();
        b.fork(0u32, 1u32)
            .write(0u32, X, AccessSize::U32)
            .free(0u32, X, 4)
            .write(1u32, X, AccessSize::U32);
        assert!(LockSetDetector::new().run(&b.build()).races.is_empty());
    }
}
