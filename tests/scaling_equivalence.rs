//! Scaling-equivalence matrix: the ring-pipelined ingestion path must be
//! **byte-identical** to the funnel path.
//!
//! `dgrace_runtime::replay_pipelined*` re-architects offline replay
//! (per-shard SPSC lanes, epoch-batched sync broadcast) purely for
//! throughput; detection output is contractually unchanged. This suite
//! locks that contract in across the full configuration matrix:
//!
//! * detector family × shadow-store backend (six combinations),
//! * shard counts 1 / 2 / 4 / 8,
//! * warm-start pruning (`--prune-with`), shadow budgets
//!   (`--shadow-budget`), resync-recovered traces (`--resync`),
//! * mid-trace checkpoint + resume — *across* paths: a funnel-written
//!   manifest resumed by the pipeline and vice versa,
//! * self-healing supervised runs (shard panic mid-trace),
//! * randomized traces via property tests.
//!
//! Comparisons are full-`Report` equality wherever the trace contains no
//! `Alloc` events; traces with allocations compare race signatures and
//! the path-invariant counters instead (immediate routing may place a
//! pre-`Alloc` access on a different shard than the funnel's deferred
//! routing, shifting partition *statistics* — never the race set; see
//! the pipeline module docs).

use proptest::prelude::*;

use dgrace::core::DynamicGranularityOn;
use dgrace::detectors::{race_signature, DjitOn, FastTrackOn, Report, ShardableDetector};
use dgrace::runtime::{
    replay_checkpointed, replay_pipelined, replay_pipelined_checkpointed, replay_pipelined_pruned,
    replay_pipelined_supervised, replay_sharded, replay_sharded_pruned, silence_injected_panics,
    CheckpointInterval, CheckpointManifest, CheckpointOptions, PanicOnEvent, SupervisorPolicy,
    CHECKPOINT_FILE,
};
use dgrace::shadow::{HashSelect, PagedSelect};
use dgrace::trace::io::{read_trace_with, to_bytes};
use dgrace::trace::{
    AccessSize, Addr, AnalysisSummary, ClassifiedRange, LocationClass, PruneSet, ReadOptions,
    Trace, TraceBuilder,
};

type Proto = Box<dyn ShardableDetector + Send>;
type MakeClean = Box<dyn Fn() -> Proto>;
type MakeFaulty = Box<dyn Fn(usize, u64) -> Proto>;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The six detector × store combinations, each as a bare prototype
/// factory and a fault-wrapped factory (shard `target` panics at its
/// `panic_at`-th event).
fn prototypes() -> Vec<(&'static str, MakeClean, MakeFaulty)> {
    macro_rules! combo {
        ($name:expr, $ty:ty) => {
            (
                $name,
                Box::new(|| Box::new(<$ty>::new()) as Proto) as MakeClean,
                Box::new(|target, at| {
                    Box::new(PanicOnEvent::new(<$ty>::new(), target, at)) as Proto
                }) as MakeFaulty,
            )
        };
    }
    vec![
        combo!("fasttrack/hash", FastTrackOn<HashSelect>),
        combo!("fasttrack/paged", FastTrackOn<PagedSelect>),
        combo!("djit/hash", DjitOn<HashSelect>),
        combo!("djit/paged", DjitOn<PagedSelect>),
        combo!("dynamic/hash", DynamicGranularityOn<HashSelect>),
        combo!("dynamic/paged", DynamicGranularityOn<PagedSelect>),
    ]
}

/// Fixed matrix trace: three threads, racy pairs in four 4 KiB regions
/// (region `r` routes to shard `r % shards`), read-write and write-write
/// races, lock-protected traffic, and fork/join edges. No `Alloc`
/// events, so reports compare bit-for-bit across paths.
fn matrix_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32).fork(0u32, 2u32);
    for r in 1..=4u64 {
        let addr = (r << 12) | 0x40;
        b.write(0u32, addr, AccessSize::U64)
            .write(1u32, addr, AccessSize::U64)
            .read(2u32, addr + 8, AccessSize::U64)
            .write(0u32, addr + 8, AccessSize::U64);
    }
    for t in 0..3u32 {
        b.locked(t, 0u32, |b| {
            b.write(t, 0x7000u64, AccessSize::U64)
                .read(t, 0x7008u64, AccessSize::U64);
        });
    }
    b.join(0u32, 1u32).join(0u32, 2u32);
    b.build()
}

/// A trace long enough that every lane crosses multiple ring segments
/// (the pipeline batches 1024 events per segment): ~20k accesses over
/// four regions with periodic lock sections and two planted races.
fn long_trace() -> Trace {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    for i in 0..10_000u64 {
        let region = (i % 4) + 1;
        let addr = (region << 12) | (((i / 4) % 64) * 8);
        let tid = (i % 2) as u32;
        if i % 512 == 0 {
            b.locked(tid, 1u32, |b| {
                b.write(tid, 0x9000u64, AccessSize::U64);
            });
        }
        b.write(tid, addr, AccessSize::U64);
    }
    b.join(0u32, 1u32);
    b.build()
}

/// Strips the fault wrapper's name suffix so healed reports compare
/// against clean ones.
fn normalized(mut rep: Report, name: &str) -> Report {
    rep.detector = name.to_string();
    rep
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dgrace-scaling-{}-{}",
        std::process::id(),
        tag.replace('/', "-")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Asserts the invariants that hold for *every* trace, Alloc or not.
fn assert_signature_equal(piped: &Report, funnel: &Report, ctx: &str) {
    assert_eq!(
        race_signature(piped),
        race_signature(funnel),
        "{ctx}: race sets differ"
    );
    assert_eq!(piped.stats.events, funnel.stats.events, "{ctx}: events");
    assert_eq!(
        piped.stats.accesses, funnel.stats.accesses,
        "{ctx}: accesses"
    );
    assert_eq!(piped.stats.pruned, funnel.stats.pruned, "{ctx}: pruned");
    assert_eq!(piped.stats.dropped, funnel.stats.dropped, "{ctx}: dropped");
    assert_eq!(
        piped.stats.events_lost, funnel.stats.events_lost,
        "{ctx}: events_lost"
    );
}

/// Tentpole matrix: six detector × store combinations, four shard
/// counts, full-report equality between the two ingestion paths.
#[test]
fn fixed_matrix_pipelined_equals_funnel_exactly() {
    let trace = matrix_trace();
    for (name, bare, _) in prototypes() {
        for &shards in &SHARD_COUNTS {
            let funnel = replay_sharded(bare().as_ref(), &trace, shards);
            let piped = replay_pipelined(bare().as_ref(), &trace, shards);
            assert!(!funnel.races.is_empty(), "{name}: matrix trace has races");
            assert_eq!(piped, funnel, "{name} shards={shards}");
        }
    }
}

/// Segment-boundary coverage: a trace long enough that every lane
/// flushes many ring segments still matches exactly, and the race set is
/// independent of the shard count.
#[test]
fn long_trace_crosses_segments_and_matches() {
    let trace = long_trace();
    let mut first: Option<Vec<_>> = None;
    for &shards in &SHARD_COUNTS {
        let funnel = replay_sharded(&FastTrackOn::<HashSelect>::new(), &trace, shards);
        let piped = replay_pipelined(&FastTrackOn::<HashSelect>::new(), &trace, shards);
        assert_eq!(piped, funnel, "shards={shards}");
        let sig = race_signature(&piped);
        if let Some(f) = &first {
            assert_eq!(&sig, f, "shards={shards} changed the race set");
        } else {
            first = Some(sig);
        }
    }
}

/// `--prune-with` analog: a warm-start prune set drops the same accesses
/// on both paths, at every shard count.
#[test]
fn pruned_replay_matches_across_paths() {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .write(0u32, 0x1100u64, AccessSize::U64)
        .write(1u32, 0x1100u64, AccessSize::U64);
    for i in 0..32u64 {
        b.write(0u32, 0xA000 + i * 8, AccessSize::U64);
    }
    b.join(0u32, 1u32);
    let trace = b.build();
    let summary = AnalysisSummary {
        ranges: vec![ClassifiedRange {
            start: Addr(0xA000),
            len: 256,
            class: LocationClass::ThreadLocal,
        }],
        ..Default::default()
    };
    let prune = summary.prune_set(1, 0);
    assert!(!prune.is_empty());
    for &shards in &SHARD_COUNTS {
        let funnel = replay_sharded_pruned(
            &FastTrackOn::<PagedSelect>::new(),
            &trace,
            shards,
            prune.clone(),
        );
        let piped = replay_pipelined_pruned(
            &FastTrackOn::<PagedSelect>::new(),
            &trace,
            shards,
            prune.clone(),
        );
        assert!(funnel.stats.pruned > 0, "prune set must actually fire");
        assert_eq!(piped, funnel, "shards={shards}");
    }
}

/// `--shadow-budget` analog: under memory pressure both paths evict the
/// same shadow cells and degrade identically.
#[test]
fn shadow_budget_runs_match_across_paths() {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    // 256 spread-out locations inside one region: enough distinct cells
    // to blow a 1 KiB budget, all routed to one shard so eviction
    // pressure is concentrated.
    for i in 0..256u64 {
        b.write(0u32, 0x1000 + i * 16, AccessSize::U64);
    }
    b.write(0u32, 0x1100u64, AccessSize::U64)
        .write(1u32, 0x1100u64, AccessSize::U64)
        .join(0u32, 1u32);
    let trace = b.build();
    for &shards in &[1usize, 2, 4] {
        let budgeted = || {
            let mut proto: Proto = Box::new(FastTrackOn::<HashSelect>::new());
            proto.set_shadow_budget(Some(1024));
            proto
        };
        let funnel = replay_sharded(budgeted().as_ref(), &trace, shards);
        let piped = replay_pipelined(budgeted().as_ref(), &trace, shards);
        assert!(
            funnel.stats.evicted > 0,
            "shards={shards}: budget must actually evict"
        );
        assert_eq!(piped, funnel, "shards={shards}");
    }
}

/// `--resync` analog: both paths replay the *same* resync-recovered
/// trace to the same report after mid-stream corruption.
#[test]
fn resync_recovered_trace_matches_across_paths() {
    let trace = matrix_trace();
    let mut bytes = to_bytes(&trace);
    // Stomp the first record tag after the 16-byte header: 0xFF is not a
    // valid event tag, so strict decode fails and resync must skip.
    bytes[16] = 0xFF;
    let opts = ReadOptions {
        resync: true,
        ..Default::default()
    };
    let (recovered, stats) =
        read_trace_with(&mut bytes.as_slice(), opts).expect("resync decode succeeds");
    assert!(stats.lossy(), "corruption must have dropped something");
    assert!(!recovered.is_empty());
    for &shards in &SHARD_COUNTS {
        let funnel = replay_sharded(&DjitOn::<HashSelect>::new(), &recovered, shards);
        let piped = replay_pipelined(&DjitOn::<HashSelect>::new(), &recovered, shards);
        assert_eq!(piped, funnel, "shards={shards}");
    }
}

/// Cross-path checkpoint compatibility: a manifest written by the funnel
/// path resumes on the pipeline, a pipeline-written manifest resumes on
/// the funnel, and both land on the clean report.
#[test]
fn checkpoints_resume_across_paths() {
    let trace = matrix_trace();
    let bare = |name: &str| -> Proto {
        match name {
            "fasttrack" => Box::new(FastTrackOn::<HashSelect>::new()),
            _ => Box::new(DynamicGranularityOn::<PagedSelect>::new()),
        }
    };
    for name in ["fasttrack", "dynamic"] {
        for shards in [2usize, 4] {
            let clean = replay_sharded(bare(name).as_ref(), &trace, shards);

            // Funnel writes, pipeline resumes.
            let dir = scratch_dir(&format!("f2p-{name}-s{shards}"));
            let ckpt = CheckpointOptions {
                dir: dir.clone(),
                every: CheckpointInterval::Events(3),
            };
            let full = replay_checkpointed(
                bare(name),
                &trace,
                shards,
                PruneSet::empty(),
                None,
                Some(&ckpt),
                None,
            )
            .expect("funnel checkpointed run");
            assert_eq!(full, clean, "{name} s{shards}: checkpointing is free");
            let manifest = CheckpointManifest::load(&dir.join(CHECKPOINT_FILE))
                .expect("manifest readable")
                .expect("manifest present");
            assert!(manifest.trace_offset > 0);
            let resumed = replay_pipelined_checkpointed(
                bare(name),
                &trace,
                shards,
                PruneSet::empty(),
                None,
                None,
                Some(&manifest),
            )
            .expect("pipeline resume of funnel manifest");
            assert_eq!(resumed, clean, "{name} s{shards}: funnel → pipeline");
            let _ = std::fs::remove_dir_all(&dir);

            // Pipeline writes, funnel resumes.
            let dir = scratch_dir(&format!("p2f-{name}-s{shards}"));
            let ckpt = CheckpointOptions {
                dir: dir.clone(),
                every: CheckpointInterval::Events(3),
            };
            let full = replay_pipelined_checkpointed(
                bare(name),
                &trace,
                shards,
                PruneSet::empty(),
                None,
                Some(&ckpt),
                None,
            )
            .expect("pipeline checkpointed run");
            assert_eq!(full, clean, "{name} s{shards}: pipeline checkpointing");
            let manifest = CheckpointManifest::load(&dir.join(CHECKPOINT_FILE))
                .expect("manifest readable")
                .expect("manifest present");
            assert!(manifest.trace_offset > 0);
            let resumed = replay_checkpointed(
                bare(name),
                &trace,
                shards,
                PruneSet::empty(),
                None,
                None,
                Some(&manifest),
            )
            .expect("funnel resume of pipeline manifest");
            assert_eq!(resumed, clean, "{name} s{shards}: pipeline → funnel");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Self-heal on the pipeline: a shard panic mid-trace is healed by the
/// supervisor, and the healed report equals the clean funnel report for
/// every detector family, store backend, and shard count.
#[test]
fn supervised_pipeline_heals_to_clean_report() {
    silence_injected_panics();
    let trace = matrix_trace();
    for (name, bare, faulty) in prototypes() {
        for shards in [1usize, 2, 4] {
            let clean = replay_sharded(bare().as_ref(), &trace, shards);
            for panic_at in [1u64, 3] {
                let healed = replay_pipelined_supervised(
                    faulty(shards - 1, panic_at),
                    &trace,
                    shards,
                    PruneSet::empty(),
                    SupervisorPolicy::default(),
                );
                assert!(
                    healed.failures.is_empty(),
                    "{name} s{shards} n{panic_at}: {:?}",
                    healed.failures
                );
                assert_eq!(
                    normalized(healed, &clean.detector),
                    clean,
                    "{name} s{shards} n{panic_at}: healed == clean"
                );
            }
        }
    }
}

/// Builds a structurally valid trace from a generated op list: three
/// forked threads issuing reads, writes, and lock-protected writes over
/// four 4 KiB regions, then joined.
fn trace_from_ops(ops: &[(u8, u8, u64)]) -> Trace {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32).fork(0u32, 2u32).fork(0u32, 3u32);
    for &(kind, tid, slot) in ops {
        let tid = u32::from(tid % 4);
        let region = (slot % 4) + 1;
        let addr = (region << 12) | ((slot / 4) * 8);
        match kind % 3 {
            0 => {
                b.read(tid, addr, AccessSize::U64);
            }
            1 => {
                b.write(tid, addr, AccessSize::U64);
            }
            _ => {
                b.locked(tid, (slot % 2) as u32, |b| {
                    b.write(tid, addr, AccessSize::U64);
                });
            }
        }
    }
    b.join(0u32, 1u32).join(0u32, 2u32).join(0u32, 3u32);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized traces: any mix of reads, writes, and locked writes
    /// over four regions produces identical reports on both paths at a
    /// random shard count.
    #[test]
    fn random_traces_equivalent(
        ops in proptest::collection::vec((0u8..3, 0u8..4, 0u64..48), 1..140),
        shards in 1usize..9,
    ) {
        let trace = trace_from_ops(&ops);
        let funnel = replay_sharded(&FastTrackOn::<HashSelect>::new(), &trace, shards);
        let piped = replay_pipelined(&FastTrackOn::<HashSelect>::new(), &trace, shards);
        prop_assert_eq!(&piped, &funnel, "shards={}", shards);
        assert_signature_equal(&piped, &funnel, "random/fasttrack");
    }

    /// Same property through the dynamic-granularity detector, whose
    /// split/dissolve machinery is the most state-heavy consumer of the
    /// per-shard event sequence.
    #[test]
    fn random_traces_equivalent_dynamic(
        ops in proptest::collection::vec((0u8..3, 0u8..4, 0u64..48), 1..100),
        shards in 1usize..9,
    ) {
        let trace = trace_from_ops(&ops);
        let funnel = replay_sharded(&DynamicGranularityOn::<HashSelect>::new(), &trace, shards);
        let piped = replay_pipelined(&DynamicGranularityOn::<HashSelect>::new(), &trace, shards);
        prop_assert_eq!(&piped, &funnel, "shards={}", shards);
    }
}
