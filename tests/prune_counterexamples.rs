//! Regression tests for two prune-analysis soundness holes, each caught
//! by a concrete counterexample trace:
//!
//! 1. Per-byte thread-locality proofs do not compose to word granules —
//!    two adjacent atoms can each be internally fork/join-ordered while
//!    their accesses are mutually concurrent, so pruning a merged range
//!    at granule 4 hid the word detector's granularity-artifact race.
//!    Fixed by merging ThreadLocal atoms only when *jointly* ordered and
//!    compiling coarse-granularity prune sets per classified range.
//! 2. A duplicate join (structurally valid) drove the live-thread counter
//!    below the number of running threads, misclassifying a racing write
//!    as a single-threaded initialization. Fixed by tracking per-thread
//!    liveness instead of a bare counter.

use dgrace_detectors::{DetectorExt, FastTrack, Granularity, StaticPruneFilter};
use dgrace_trace::{validate, AccessSize, TraceBuilder};

#[test]
fn word_prune_keeps_granularity_artifact_race() {
    // T0 writes U16@0x100, T1 writes U16@0x102 — concurrent, disjoint
    // bytes, but the same word cell: the bare word detector reports a
    // (granularity-artifact) race that pruning must not remove.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .write(0u32, 0x100u64, AccessSize::U16)
        .write(1u32, 0x102u64, AccessSize::U16)
        .join(0u32, 1u32);
    let trace = b.build();
    assert_eq!(validate(&trace), Ok(()));
    let summary = dgrace_analysis::analyze(&trace);
    let prune = summary.prune_set(4, 0); // word-detector compile, as the CLI does
    let bare = FastTrack::with_granularity(Granularity::Word).run(&trace);
    let pruned =
        StaticPruneFilter::new(FastTrack::with_granularity(Granularity::Word), prune).run(&trace);
    assert_eq!(
        bare.races.len(),
        pruned.races.len(),
        "word-granularity race set changed by pruning"
    );
}

#[test]
fn double_join_does_not_hide_live_thread() {
    // fork T1, fork T2, join T1 twice (passes validate), then main writes
    // X while T2 concurrently reads it — a genuine race that must survive
    // pruning even though the bogus second join once made the write look
    // single-threaded.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .fork(0u32, 2u32)
        .read(1u32, 0x500u64, AccessSize::U8)
        .join(0u32, 1u32)
        .join(0u32, 1u32) // duplicate join
        .write(0u32, 0x100u64, AccessSize::U64)
        .read(2u32, 0x100u64, AccessSize::U64)
        .join(0u32, 2u32);
    let trace = b.build();
    assert_eq!(validate(&trace), Ok(()), "double join passes validation");
    let summary = dgrace_analysis::analyze(&trace);
    let prune = summary.prune_set(1, 0);
    let bare = FastTrack::new().run(&trace);
    let pruned = StaticPruneFilter::new(FastTrack::new(), prune).run(&trace);
    assert!(!bare.races.is_empty(), "the counterexample must race");
    assert_eq!(bare.races.len(), pruned.races.len(), "pruning lost a race");
}
