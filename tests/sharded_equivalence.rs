//! Differential stress tests for the sharded online runtime.
//!
//! Real threads drive the sharded engine while it journals every event
//! with its sequence stamp; the journal is reconstructed into a `Trace`
//! (the observed serialization) and replayed through a *serialized*
//! detector. The race sets — addresses plus kinds — must be identical:
//! the sharded engine may not invent, lose, or reclassify a single race,
//! at any shard count.

use std::sync::Arc;
use std::thread;

use dgrace::core::DynamicGranularity;
use dgrace::detectors::{race_signature, DetectorExt, FastTrack, RaceKind};
use dgrace::runtime::{Runtime, RuntimeOptions};
use dgrace::trace::{validate, Addr};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A small buffer forces frequent overflow flushes; an odd size keeps
/// flush boundaries misaligned with loop iterations.
fn recording(shards: usize) -> RuntimeOptions {
    RuntimeOptions {
        shards,
        buffer_capacity: 7,
        record: true,
    }
}

/// Mixed workload: `workers` threads update a shared array under a lock
/// (race-free) and each writes a dedicated cell that the main thread
/// also writes unsynchronized (a deterministic write-write race per
/// worker, schedule-independent).
fn drive_mixed(rt: &Runtime, workers: usize) -> Vec<Addr> {
    let main = rt.main();
    let locked = rt.array(64);
    let m = Arc::new(rt.mutex(()));
    let racy: Vec<_> = (0..workers).map(|_| rt.cell(0)).collect();
    let racy_addrs: Vec<Addr> = racy.iter().map(|c| c.addr()).collect();

    let mut joins = Vec::new();
    let mut tickets = Vec::new();
    for (w, cell) in racy.iter().enumerate() {
        let (child, ticket) = main.fork();
        let locked = locked.clone();
        let m = Arc::clone(&m);
        let cell = cell.clone();
        tickets.push(ticket);
        joins.push(thread::spawn(move || {
            for i in 0..50usize {
                {
                    let _g = m.lock(&child);
                    let slot = (w * 7 + i) % 64;
                    let v = locked.get(&child, slot);
                    locked.set(&child, slot, v + 1);
                }
                cell.set(&child, i as u64);
            }
        }));
    }
    // Unsynchronized writes racing every worker's cell.
    for c in &racy {
        c.set(&main, 999);
    }
    for jh in joins {
        jh.join().unwrap();
    }
    for t in tickets {
        main.join(t);
    }
    racy_addrs
}

/// Fully locked workload: every access to shared state is protected, so
/// no detector at any shard count may report anything.
fn drive_locked(rt: &Runtime, workers: usize) {
    let main = rt.main();
    let buf = rt.array(128);
    let m = Arc::new(rt.mutex(0usize));

    let mut joins = Vec::new();
    let mut tickets = Vec::new();
    for _ in 0..workers {
        let (child, ticket) = main.fork();
        let buf = buf.clone();
        let m = Arc::clone(&m);
        tickets.push(ticket);
        joins.push(thread::spawn(move || {
            for _ in 0..40 {
                let mut cursor = m.lock(&child);
                let i = *cursor % buf.len();
                let v = buf.get(&child, i);
                buf.set(&child, i, v + 1);
                *cursor += 1;
            }
        }));
    }
    for jh in joins {
        jh.join().unwrap();
    }
    for t in tickets {
        main.join(t);
    }
}

#[test]
fn sharded_race_set_matches_serialized_dynamic() {
    let mut signatures: Vec<Vec<(Addr, RaceKind)>> = Vec::new();
    let mut expected: Vec<Addr> = Vec::new();

    for &shards in &SHARD_COUNTS {
        let rt = Runtime::sharded_with_options(&DynamicGranularity::new(), recording(shards));
        assert_eq!(rt.shard_count(), shards);
        expected = drive_mixed(&rt, 4);

        let trace = rt.take_recorded().expect("journaling runtime");
        validate(&trace).expect("journal is a well-formed serialization");
        let report = rt.finish();
        assert_eq!(
            report.stats.events,
            trace.len() as u64,
            "shards={shards}: journal and event count must agree exactly"
        );

        // The serialized detector replays the same observed schedule.
        let serial = DynamicGranularity::new().run(&trace);
        assert_eq!(
            race_signature(&report),
            race_signature(&serial),
            "shards={shards}: sharded vs serialized race sets differ"
        );
        signatures.push(race_signature(&report));
    }

    // Byte-identical race sets across every shard count (incl. 1).
    for (i, sig) in signatures.iter().enumerate() {
        assert_eq!(
            sig, &signatures[0],
            "shards={} disagrees with shards={}",
            SHARD_COUNTS[i], SHARD_COUNTS[0]
        );
    }
    // And they are exactly the planted write-write races (racy cells are
    // allocated in increasing address order, matching the sorted
    // signature).
    let planted: Vec<(Addr, RaceKind)> = expected
        .iter()
        .map(|&a| (a, RaceKind::WriteWrite))
        .collect();
    assert_eq!(signatures[0], planted);
}

#[test]
fn sharded_race_set_matches_serialized_fasttrack() {
    for &shards in &SHARD_COUNTS {
        let rt = Runtime::sharded_with_options(&FastTrack::new(), recording(shards));
        drive_mixed(&rt, 3);
        let trace = rt.take_recorded().expect("journaling runtime");
        validate(&trace).expect("journal is a well-formed serialization");
        let report = rt.finish();
        let serial = FastTrack::new().run(&trace);
        assert_eq!(
            race_signature(&report),
            race_signature(&serial),
            "shards={shards}: sharded vs serialized race sets differ"
        );
    }
}

#[test]
fn sharded_locked_workload_stays_race_free() {
    for &shards in &SHARD_COUNTS {
        let rt = Runtime::sharded_with_options(&DynamicGranularity::new(), recording(shards));
        drive_locked(&rt, 4);
        let trace = rt.take_recorded().expect("journaling runtime");
        validate(&trace).expect("journal is a well-formed serialization");
        let report = rt.finish();
        assert!(
            report.races.is_empty(),
            "shards={shards}: {:?}",
            report.races
        );
        let serial = DynamicGranularity::new().run(&trace);
        assert!(
            serial.races.is_empty(),
            "shards={shards}: serialized replay"
        );
        assert_eq!(report.stats.events, trace.len() as u64);
    }
}
