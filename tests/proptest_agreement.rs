//! Cross-detector property tests on randomly generated schedules.
//!
//! The generator builds structurally valid multithreaded programs (all
//! forks first, locks properly bracketed, random block interleavings) and
//! the properties compare the whole detector stack against the exact
//! oracle.

use std::sync::Arc;
use std::thread;

use dgrace::analysis::analyze;
use dgrace::baselines::{HybridDetector, SegmentDetector};
use dgrace::core::{DynamicConfig, DynamicGranularity};
use dgrace::detectors::{
    race_signature, DetectorExt, Djit, FastTrack, OracleDetector, Report, StaticPruneFilter,
};
use dgrace::runtime::{Runtime, RuntimeOptions};
use dgrace::trace::{validate, Trace};
use dgrace::workloads::{BlockBuilder, Scheduler};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One operation of a random per-thread program.
#[derive(Clone, Debug)]
enum Op {
    Read(u8),
    Write(u8),
    /// Lock-protected accesses: (slot, is_write).
    Locked(u8, Vec<(u8, bool)>),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Read),
        (0u8..12).prop_map(Op::Write),
        (
            0u8..3,
            proptest::collection::vec((0u8..12, any::<bool>()), 1..4)
        )
            .prop_map(|(l, accs)| Op::Locked(l, accs)),
    ]
}

fn arb_program() -> impl Strategy<Value = Vec<Vec<Op>>> {
    proptest::collection::vec(proptest::collection::vec(arb_op(), 1..25), 2..4)
}

/// Builds a trace from per-thread op lists. `spacing` controls address
/// adjacency: large spacing ⇒ no location is ever a sharing neighbor.
fn build(programs: &[Vec<Op>], spacing: u64, seed: u64) -> Trace {
    use dgrace::trace::AccessSize;
    let base = 0x10_000u64;
    let addr = |slot: u8| base + slot as u64 * spacing;
    let mut builders = Vec::new();
    for (i, prog) in programs.iter().enumerate() {
        let tid = (i + 1) as u32;
        let mut b = BlockBuilder::new(tid);
        for op in prog {
            match op {
                Op::Read(s) => {
                    b.read(addr(*s), AccessSize::U32);
                }
                Op::Write(s) => {
                    b.write(addr(*s), AccessSize::U32);
                }
                Op::Locked(l, accs) => {
                    b.locked(200 + *l as u32, |b| {
                        for (s, w) in accs {
                            if *w {
                                b.write(addr(*s), AccessSize::U32);
                            } else {
                                b.read(addr(*s), AccessSize::U32);
                            }
                        }
                    });
                }
            }
            b.cut();
        }
        builders.push(b);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    Scheduler::new().run(builders, &mut rng)
}

/// Executes the random per-thread programs on *real threads* under the
/// sharded online runtime (journaling mode): slots become tracked cells,
/// lock ids tracked mutexes. Returns the merged sharded report plus the
/// journal of the schedule that actually ran.
fn run_online(programs: &[Vec<Op>], shards: usize) -> (Report, Trace) {
    let rt = Runtime::sharded_with_options(
        &DynamicGranularity::new(),
        RuntimeOptions {
            shards,
            buffer_capacity: 5, // small + odd: force misaligned overflow flushes
            record: true,
        },
    );
    let main = rt.main();
    let cells: Vec<_> = (0..12).map(|_| rt.cell(0)).collect();
    let locks: Vec<_> = (0..3).map(|_| Arc::new(rt.mutex(()))).collect();

    let mut joins = Vec::new();
    let mut tickets = Vec::new();
    for prog in programs {
        let (child, ticket) = main.fork();
        let cells = cells.clone();
        let locks = locks.clone();
        let prog = prog.clone();
        tickets.push(ticket);
        joins.push(thread::spawn(move || {
            for op in &prog {
                match op {
                    Op::Read(s) => {
                        cells[*s as usize].get(&child);
                    }
                    Op::Write(s) => {
                        cells[*s as usize].set(&child, 1);
                    }
                    Op::Locked(l, accs) => {
                        let _g = locks[*l as usize].lock(&child);
                        for (s, w) in accs {
                            if *w {
                                cells[*s as usize].set(&child, 2);
                            } else {
                                cells[*s as usize].get(&child);
                            }
                        }
                    }
                }
            }
        }));
    }
    for jh in joins {
        jh.join().unwrap();
    }
    for t in tickets {
        main.join(t);
    }
    let trace = rt.take_recorded().expect("journaling runtime");
    let report = rt.finish();
    (report, trace)
}

proptest! {
    // Each case spawns real threads; fewer cases than the offline
    // properties keep the suite fast while still seeding the
    // regressions file on any counterexample.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sharded online runtime agrees with the exact oracle on the
    /// schedule it actually observed: the journal replayed through
    /// `OracleDetector` yields the same racy locations the live sharded
    /// dynamic detector reported (cells are padded apart, so sharing
    /// never blurs the comparison), at every shard count.
    #[test]
    fn sharded_online_runtime_agrees_with_oracle(
        programs in arb_program(),
        shards in 1usize..=8,
    ) {
        let (report, trace) = run_online(&programs, shards);
        prop_assert!(validate(&trace).is_ok(), "journal must be well-formed");
        prop_assert_eq!(
            report.stats.events,
            trace.len() as u64,
            "finish must count exactly the journaled events"
        );
        let oracle = OracleDetector::new().run(&trace).race_addrs();
        prop_assert_eq!(
            report.race_addrs(),
            oracle,
            "sharded online (shards={}) vs oracle on the observed schedule",
            shards
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// FastTrack (byte), DJIT+, the segment detector, the hybrid
    /// detector and the oracle agree on the set of racy locations.
    #[test]
    fn happens_before_detectors_agree(programs in arb_program(), seed in 0u64..1000) {
        let trace = build(&programs, 64, seed);
        prop_assert!(validate(&trace).is_ok());
        let oracle = OracleDetector::new().run(&trace).race_addrs();
        let ft = FastTrack::new().run(&trace).race_addrs();
        let dj = Djit::new().run(&trace).race_addrs();
        let seg = SegmentDetector::new().run(&trace).race_addrs();
        let hy = HybridDetector::new().run(&trace).race_addrs();
        prop_assert_eq!(&ft, &oracle, "fasttrack vs oracle");
        prop_assert_eq!(&dj, &oracle, "djit vs oracle");
        prop_assert_eq!(&seg, &oracle, "segment vs oracle");
        prop_assert_eq!(&hy, &oracle, "hybrid vs oracle");
    }

    /// With addresses spaced beyond the neighbor-scan distance, the
    /// dynamic detector can never share clocks, so it must behave exactly
    /// like byte-granularity FastTrack — on every schedule.
    #[test]
    fn dynamic_without_neighbors_equals_oracle(programs in arb_program(), seed in 0u64..1000) {
        let trace = build(&programs, 64, seed);
        let oracle = OracleDetector::new().run(&trace).race_addrs();
        let dynamic = DynamicGranularity::new().run(&trace);
        prop_assert_eq!(dynamic.race_addrs(), oracle);
        // And it indeed never shared.
        let sh = dynamic.stats.sharing.unwrap();
        prop_assert_eq!(sh.shares, 0);
    }

    /// With sharing force-disabled, the dynamic detector equals the
    /// oracle even on densely packed (adjacent) addresses.
    #[test]
    fn dynamic_sharing_disabled_equals_oracle(programs in arb_program(), seed in 0u64..1000) {
        let trace = build(&programs, 4, seed);
        let oracle = OracleDetector::new().run(&trace).race_addrs();
        let cfg = DynamicConfig::no_sharing();
        let dynamic = DynamicGranularity::with_config(cfg).run(&trace);
        prop_assert_eq!(dynamic.race_addrs(), oracle);
    }

    /// Full dynamic granularity on dense addresses: every report must be
    /// explainable — a true racy location or a location that shared a
    /// clock (share_count > 1); and on oracle-race-free traces with no
    /// sharing-induced artifacts possible (single-threaded-per-slot
    /// patterns aside) the detector must not crash and its stats must be
    /// internally consistent.
    #[test]
    fn dynamic_dense_reports_are_explainable(programs in arb_program(), seed in 0u64..1000) {
        let trace = build(&programs, 4, seed);
        let oracle = OracleDetector::new().run(&trace).race_addrs();
        let rep = DynamicGranularity::new().run(&trace);
        for race in &rep.races {
            let genuine = oracle.contains(&race.addr);
            prop_assert!(
                genuine || race.tainted,
                "unexplained race at {:?} (share_count {}, tainted {})",
                race.addr,
                race.share_count,
                race.tainted
            );
        }
        // Every genuine race location is reported unless its history was
        // absorbed into a shared clock (then some group member reported).
        if !oracle.is_empty() {
            prop_assert!(!rep.races.is_empty(), "all oracle races vanished");
        }
        let s = &rep.stats;
        prop_assert!(s.same_epoch <= s.accesses);
        prop_assert!(s.vc_frees <= s.vc_allocs);
        prop_assert!(s.peak_total_bytes >= s.peak_vc_bytes);
    }

    /// Ahead-of-time pruning is invisible to an exact detector: on every
    /// random schedule, FastTrack behind a `StaticPruneFilter` compiled
    /// from the trace's own analysis reports exactly the races bare
    /// FastTrack does — which the first property already ties to the
    /// oracle — and the pruned/checked access counts always rebalance to
    /// the bare total.
    #[test]
    fn pruned_fasttrack_agrees_with_bare_and_oracle(programs in arb_program(), seed in 0u64..1000) {
        let trace = build(&programs, 64, seed);
        let summary = analyze(&trace);
        let prune = summary.prune_set(1, 0);
        let bare = FastTrack::new().run(&trace);
        let pruned = StaticPruneFilter::new(FastTrack::new(), prune).run(&trace);
        prop_assert_eq!(
            race_signature(&pruned),
            race_signature(&bare),
            "pruned vs bare fasttrack"
        );
        prop_assert_eq!(&pruned.race_addrs(), &OracleDetector::new().run(&trace).race_addrs());
        prop_assert_eq!(pruned.stats.events, trace.len() as u64);
        prop_assert_eq!(pruned.stats.accesses + pruned.stats.pruned, bare.stats.accesses);
        // Every access the analysis called prunable was indeed dropped.
        prop_assert_eq!(pruned.stats.pruned, summary.stats.prunable_accesses());
    }

    /// Detector determinism: running the same trace twice gives the same
    /// report.
    #[test]
    fn detectors_are_deterministic(programs in arb_program(), seed in 0u64..1000) {
        let trace = build(&programs, 8, seed);
        let a = DynamicGranularity::new().run(&trace);
        let b = DynamicGranularity::new().run(&trace);
        prop_assert_eq!(a.races, b.races);
        prop_assert_eq!(a.stats, b.stats);
    }
}
