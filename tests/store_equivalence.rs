//! Differential tests proving the paged shadow store is observationally
//! identical to the chained-hash table.
//!
//! The stores index locations differently (two-level direct-mapped pages
//! vs. chained hash buckets) but must agree on every observable: race
//! sets byte-for-byte (address, kind), allocation counts, same-epoch
//! counts — for FastTrack at byte and word granularity, DJIT+, and the
//! dynamic-granularity detector, serialized and at every shard count.
//! Both stores implement the word→byte chunk-mode expansion of Fig. 4,
//! which the unit tests at the bottom pin down on unaligned accesses.

use dgrace::core::{DynamicConfig, DynamicGranularityOn};
use dgrace::detectors::{
    race_signature, DetectorExt, DjitOn, FastTrackOn, Granularity, Report, ShardableDetector,
};
use dgrace::runtime::replay_sharded;
use dgrace::shadow::{HashSelect, PagedSelect, PagedShadow, ShadowStore, ShadowTable};
use dgrace::trace::{validate, Addr, Trace};
use dgrace::workloads::{BlockBuilder, Scheduler, Workload, WorkloadKind};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// One operation of a random per-thread program. Slots map to addresses
/// a word apart, so neighbor sharing, chunk expansion, and directory
/// boundaries are all exercised.
#[derive(Clone, Debug)]
enum Op {
    Read(u8),
    Write(u8),
    /// An unaligned byte access — forces word→byte chunk expansion.
    WriteByte(u8),
    Locked(u8, Vec<(u8, bool)>),
    /// Free the whole slot region (exercises remove_range + reuse).
    FreeAll,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(Op::Read),
        (0u8..16).prop_map(Op::Write),
        (0u8..16).prop_map(Op::WriteByte),
        (
            0u8..3,
            proptest::collection::vec((0u8..16, any::<bool>()), 1..4)
        )
            .prop_map(|(l, accs)| Op::Locked(l, accs)),
        Just(Op::FreeAll),
    ]
}

fn arb_program() -> impl Strategy<Value = Vec<Vec<Op>>> {
    proptest::collection::vec(proptest::collection::vec(arb_op(), 1..20), 2..4)
}

/// Builds a trace from per-thread op lists. Slot addresses straddle a
/// 4 KiB boundary so paged-store directory crossings are exercised.
fn build(programs: &[Vec<Op>], seed: u64) -> Trace {
    use dgrace::trace::AccessSize;
    let base = 0x10_000u64 - 8 * 4;
    let addr = |slot: u8| base + slot as u64 * 4;
    let mut builders = Vec::new();
    for (i, prog) in programs.iter().enumerate() {
        let tid = (i + 1) as u32;
        let mut b = BlockBuilder::new(tid);
        for op in prog {
            match op {
                Op::Read(s) => {
                    b.read(addr(*s), AccessSize::U32);
                }
                Op::Write(s) => {
                    b.write(addr(*s), AccessSize::U32);
                }
                Op::WriteByte(s) => {
                    b.write(addr(*s) + 1, AccessSize::U8);
                }
                Op::Locked(l, accs) => {
                    b.locked(200 + *l as u32, |b| {
                        for (s, w) in accs {
                            if *w {
                                b.write(addr(*s), AccessSize::U32);
                            } else {
                                b.read(addr(*s), AccessSize::U32);
                            }
                        }
                    });
                }
                Op::FreeAll => {
                    b.free(base, 16 * 4 + 4);
                }
            }
            b.cut();
        }
        builders.push(b);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    Scheduler::new().run(builders, &mut rng)
}

/// Everything two equivalent detector runs must agree on.
fn observables(rep: &Report) -> (Vec<(Addr, dgrace::detectors::RaceKind)>, u64, u64, u64) {
    (
        race_signature(rep),
        rep.stats.accesses,
        rep.stats.same_epoch,
        rep.stats.vc_allocs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// FastTrack (byte and word), DJIT+ and the dynamic detector report
    /// byte-identical race sets on both stores, on every random schedule.
    #[test]
    fn stores_agree_serialized(programs in arb_program(), seed in 0u64..1000) {
        let trace = build(&programs, seed);
        prop_assert!(validate(&trace).is_ok());

        let h = FastTrackOn::<HashSelect>::new().run(&trace);
        let p = FastTrackOn::<PagedSelect>::new().run(&trace);
        prop_assert_eq!(observables(&h), observables(&p), "fasttrack-byte");

        let h = FastTrackOn::<HashSelect>::with_granularity(Granularity::Word).run(&trace);
        let p = FastTrackOn::<PagedSelect>::with_granularity(Granularity::Word).run(&trace);
        prop_assert_eq!(observables(&h), observables(&p), "fasttrack-word");

        let h = DjitOn::<HashSelect>::new().run(&trace);
        let p = DjitOn::<PagedSelect>::new().run(&trace);
        prop_assert_eq!(observables(&h), observables(&p), "djit");

        let h = DynamicGranularityOn::<HashSelect>::new().run(&trace);
        let p = DynamicGranularityOn::<PagedSelect>::new().run(&trace);
        prop_assert_eq!(observables(&h), observables(&p), "dynamic");
    }

    /// Sharded replay: both stores, shards 1/2/4, identical sorted race
    /// sets for the whole vector-clock detector family.
    #[test]
    fn stores_agree_sharded(programs in arb_program(), seed in 0u64..1000) {
        let trace = build(&programs, seed);
        // The bool marks detectors whose reports are provably
        // shard-invariant (per-location independence). The dynamic
        // detector's *group* race reports legitimately vary with the
        // address partition, so for it only cross-store equality at equal
        // shard counts is asserted.
        type Proto = Box<dyn ShardableDetector>;
        let protos: Vec<(Proto, Proto, bool)> = vec![
            (
                Box::new(FastTrackOn::<HashSelect>::new()),
                Box::new(FastTrackOn::<PagedSelect>::new()),
                true,
            ),
            (
                Box::new(FastTrackOn::<HashSelect>::with_granularity(Granularity::Word)),
                Box::new(FastTrackOn::<PagedSelect>::with_granularity(Granularity::Word)),
                true,
            ),
            (
                Box::new(DjitOn::<HashSelect>::new()),
                Box::new(DjitOn::<PagedSelect>::new()),
                true,
            ),
            (
                Box::new(DynamicGranularityOn::<HashSelect>::new()),
                Box::new(DynamicGranularityOn::<PagedSelect>::new()),
                false,
            ),
        ];
        for (h, p, shard_invariant) in &protos {
            let baseline = race_signature(&replay_sharded(h.as_ref(), &trace, 1));
            for &shards in &SHARD_COUNTS {
                let hs = replay_sharded(h.as_ref(), &trace, shards);
                let ps = replay_sharded(p.as_ref(), &trace, shards);
                prop_assert_eq!(
                    race_signature(&hs),
                    race_signature(&ps),
                    "hash vs paged, shards={}",
                    shards
                );
                if *shard_invariant {
                    prop_assert_eq!(
                        race_signature(&ps),
                        baseline.clone(),
                        "paged shards={} vs serialized hash",
                        shards
                    );
                }
            }
        }
    }
}

/// The paper workloads (deterministic seeds) as an end-to-end cross-check
/// on top of the random schedules: the dynamic detector's full reports —
/// races *and* sharing stats — match across stores and shard counts.
#[test]
fn paper_workloads_agree_across_stores_and_shards() {
    for kind in [
        WorkloadKind::Pbzip2,
        WorkloadKind::Streamcluster,
        WorkloadKind::Dedup,
    ] {
        let (trace, _) = Workload::new(kind)
            .with_scale(0.05)
            .with_seed(11)
            .generate();
        let serial_hash = DynamicGranularityOn::<HashSelect>::new().run(&trace);
        let serial_paged = DynamicGranularityOn::<PagedSelect>::new().run(&trace);
        assert_eq!(
            race_signature(&serial_hash),
            race_signature(&serial_paged),
            "{kind:?}: serialized"
        );
        assert_eq!(
            serial_hash.stats.vc_allocs, serial_paged.stats.vc_allocs,
            "{kind:?}: vc_allocs"
        );
        let hash_proto = DynamicGranularityOn::<HashSelect>::new();
        let paged_proto = DynamicGranularityOn::<PagedSelect>::new();
        for shards in SHARD_COUNTS {
            let h = replay_sharded(&hash_proto, &trace, shards);
            let p = replay_sharded(&paged_proto, &trace, shards);
            assert_eq!(
                race_signature(&h),
                race_signature(&p),
                "{kind:?}: hash vs paged at shards={shards}"
            );
            assert_eq!(
                h.stats.vc_allocs, p.stats.vc_allocs,
                "{kind:?}: vc_allocs at shards={shards}"
            );
        }
    }
}

/// Detector names distinguish the stores (reports stay attributable).
#[test]
fn paged_detectors_are_labelled() {
    use dgrace::detectors::Detector;
    assert_eq!(
        FastTrackOn::<PagedSelect>::new().name(),
        "fasttrack-byte+paged"
    );
    assert_eq!(DjitOn::<PagedSelect>::new().name(), "djit-byte+paged");
    assert_eq!(
        DynamicGranularityOn::<PagedSelect>::with_config(DynamicConfig::default()).name(),
        "dynamic+paged"
    );
    assert_eq!(FastTrackOn::<HashSelect>::new().name(), "fasttrack-byte");
}

/// Word→byte chunk-mode expansion parity at the store level: a word-mode
/// chunk answers unaligned lookups with a miss in both stores, and the
/// first unaligned insert expands the chunk preserving existing cells.
#[test]
fn word_to_byte_expansion_matches_across_stores() {
    let mut hash: ShadowTable<u32> = ShadowTable::new(128);
    let mut paged: PagedShadow<u32> = PagedShadow::new();
    let base = 0x2000u64;

    // Word-mode phase: aligned inserts only.
    for i in 0..8u64 {
        ShadowStore::insert(&mut hash, Addr(base + i * 4), i as u32);
        ShadowStore::insert(&mut paged, Addr(base + i * 4), i as u32);
    }
    // Unaligned lookups miss identically while in word mode.
    for probe in [base + 1, base + 2, base + 7, base + 13] {
        assert_eq!(
            ShadowStore::get(&hash, Addr(probe)),
            None,
            "hash {probe:#x}"
        );
        assert_eq!(
            ShadowStore::get(&paged, Addr(probe)),
            None,
            "paged {probe:#x}"
        );
    }
    // Unaligned removes are no-ops in word mode.
    assert_eq!(ShadowStore::remove(&mut hash, Addr(base + 2)), None);
    assert_eq!(ShadowStore::remove(&mut paged, Addr(base + 2)), None);

    // First unaligned insert expands the chunk in both stores…
    ShadowStore::insert(&mut hash, Addr(base + 2), 99);
    ShadowStore::insert(&mut paged, Addr(base + 2), 99);
    // …preserving every aligned cell and serving byte addresses.
    for i in 0..8u64 {
        let a = Addr(base + i * 4);
        assert_eq!(ShadowStore::get(&hash, a), Some(&(i as u32)));
        assert_eq!(ShadowStore::get(&paged, a), Some(&(i as u32)));
    }
    assert_eq!(ShadowStore::get(&hash, Addr(base + 2)), Some(&99));
    assert_eq!(ShadowStore::get(&paged, Addr(base + 2)), Some(&99));
    assert_eq!(ShadowStore::len(&hash), ShadowStore::len(&paged));

    // Expansion is per-chunk: a different chunk stays word-mode in both.
    let far = base + 0x4000;
    ShadowStore::insert(&mut hash, Addr(far), 1);
    ShadowStore::insert(&mut paged, Addr(far), 1);
    assert_eq!(ShadowStore::get(&hash, Addr(far + 3)), None);
    assert_eq!(ShadowStore::get(&paged, Addr(far + 3)), None);

    // Neighbor scans agree across the expanded/word-mode mix.
    for probe in [base + 6, base + 16, far + 4] {
        assert_eq!(
            ShadowStore::nearest_predecessor(&hash, Addr(probe), 64).map(|(a, v)| (a, *v)),
            ShadowStore::nearest_predecessor(&paged, Addr(probe), 64).map(|(a, v)| (a, *v)),
            "pred at {probe:#x}"
        );
        assert_eq!(
            ShadowStore::nearest_successor(&hash, Addr(probe), 64).map(|(a, v)| (a, *v)),
            ShadowStore::nearest_successor(&paged, Addr(probe), 64).map(|(a, v)| (a, *v)),
            "succ at {probe:#x}"
        );
    }
}
