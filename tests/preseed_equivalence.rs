//! Differential soundness of sharing-affinity pre-seeding and plan
//! routing: detection warmed by `dgrace analyze` artifacts must report
//! **exactly** the races of a cold run.
//!
//! * Pre-seeding (`--affinity-with`) is a fast path inside the dynamic
//!   detector's grouping decisions; the seeded probe falls back to the
//!   full unseeded scan on any miss, so the race set — and even the
//!   sharing statistics — are byte-identical under *any* map, including
//!   adversarially wrong ones. The matrix locks this in across both
//!   shadow stores, shard counts {1, 2, 4}, and both replay paths, and
//!   a proptest hammers it with random traces × random maps.
//! * Plan routing (`--plan-with`) only changes which shard owns which
//!   address range; for fixed-granularity detectors the merged race set
//!   is routing-invariant, which is what the CI plan-diff job relies on.
//!
//! Equivalence holds without a shadow budget: seeded runs allocate
//! fewer clocks, so under a byte cap the two runs could evict
//! different state. Nothing here sets a budget.

use std::sync::Arc;

use dgrace::analysis::analyze;
use dgrace::core::DynamicGranularityOn;
use dgrace::detectors::{race_signature, FastTrack, Granularity, Report, ShardableDetector};
use dgrace::runtime::{replay_pipelined_planned, replay_sharded, replay_sharded_planned};
use dgrace::shadow::{HashSelect, PagedSelect, StoreSelect};
use dgrace::trace::{
    AccessSize, Addr, AffinityMap, AffinityRange, AnalysisWarning, LockId, PruneSet, Trace,
    TraceBuilder,
};
use dgrace::workloads::{Workload, WorkloadKind};

use proptest::prelude::*;

const SCALE: f64 = 0.05;
const SHARDS: [usize; 3] = [1, 2, 4];

/// Sharing-heavy workloads where the affinity pass certifies real
/// strides (pre-seeding must actually fire, not just stay harmless).
const SHARING_HEAVY: [WorkloadKind; 3] = [
    WorkloadKind::Pbzip2,
    WorkloadKind::Streamcluster,
    WorkloadKind::Dedup,
];

/// Both replay paths over one prototype.
fn run_both<D: ShardableDetector + ?Sized>(
    proto: &D,
    trace: &Trace,
    shards: usize,
) -> (Report, Report) {
    let funnel = replay_sharded_planned(proto, trace, shards, PruneSet::empty(), &[]);
    let piped = replay_pipelined_planned(proto, trace, shards, PruneSet::empty(), &[]);
    (funnel, piped)
}

fn assert_seeded_matches<K: StoreSelect>(trace: &Trace, map: &Arc<AffinityMap>, tag: &str) {
    let cold = DynamicGranularityOn::<K>::new();
    let mut warm = DynamicGranularityOn::<K>::new();
    warm.set_affinity(Arc::clone(map));
    for shards in SHARDS {
        let (cold_f, cold_p) = run_both(&cold, trace, shards);
        let (warm_f, warm_p) = run_both(&warm, trace, shards);
        let want = race_signature(&cold_f);
        for (rep, path) in [
            (&cold_p, "cold pipeline"),
            (&warm_f, "seeded funnel"),
            (&warm_p, "seeded pipeline"),
        ] {
            assert_eq!(
                race_signature(rep),
                want,
                "{tag} shards={shards}: {path} race set diverged"
            );
        }
        // Sharing decisions are identical, not merely race-equivalent.
        assert_eq!(
            warm_f.stats.same_epoch, cold_f.stats.same_epoch,
            "{tag} shards={shards}: same-epoch filter diverged"
        );
        assert_eq!(
            warm_f.sharing_summary(),
            cold_f.sharing_summary(),
            "{tag} shards={shards}: sharing stats diverged"
        );
    }
}

trait SharingSummary {
    fn sharing_summary(&self) -> Option<(u64, u64, u64)>;
}

impl SharingSummary for Report {
    fn sharing_summary(&self) -> Option<(u64, u64, u64)> {
        self.stats
            .sharing
            .as_ref()
            .map(|s| (s.shares, s.splits, s.max_group as u64))
    }
}

/// The headline matrix: on sharing-heavy workloads, seeding with the
/// real analysis map leaves the race set and sharing statistics
/// byte-identical on both shadow stores, every shard count, and both
/// replay paths — while the seeded fast path demonstrably fires.
#[test]
fn preseeded_detection_is_race_identical_on_real_maps() {
    for kind in SHARING_HEAVY {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let map = Arc::new(analyze(&trace).affinity);
        assert!(
            !map.is_empty(),
            "{}: affinity pass certified nothing",
            kind.name()
        );
        assert_seeded_matches::<HashSelect>(&trace, &map, &format!("{} hash", kind.name()));
        assert_seeded_matches::<PagedSelect>(&trace, &map, &format!("{} paged", kind.name()));

        // The fast path fires: a single-shard seeded run records hits
        // and never allocates *more* clocks than a cold one. (The
        // strictly-fewer-allocations case — the second-epoch shortcut —
        // is pinned by the core crate's unit tests; whether it triggers
        // here depends on the workload's sync cadence at this scale.)
        let mut warm = DynamicGranularityOn::<HashSelect>::new();
        warm.set_affinity(Arc::clone(&map));
        let seeded = replay_sharded(&warm, &trace, 1);
        let cold = replay_sharded(&DynamicGranularityOn::<HashSelect>::new(), &trace, 1);
        assert!(
            seeded.stats.preseed_hits > 0,
            "{}: pre-seeding never fired",
            kind.name()
        );
        assert!(
            seeded.stats.vc_allocs <= cold.stats.vc_allocs,
            "{}: seeding must not allocate extra clocks ({} vs {})",
            kind.name(),
            seeded.stats.vc_allocs,
            cold.stats.vc_allocs
        );
        assert_eq!(cold.stats.preseed_hits, 0);
    }
}

/// Adversarial mispredicts: maps whose strides are wrong for the
/// workload (misaligned, undersized, oversized, covering everything)
/// must be completely harmless — same races, same sharing decisions.
#[test]
fn adversarial_affinity_maps_are_harmless() {
    let hostile = [
        // One huge range at a stride few accesses match.
        vec![AffinityRange {
            start: Addr(0),
            len: 1 << 26,
            stride: 2,
        }],
        // Misaligned word-stride carpet over the heap.
        vec![AffinityRange {
            start: Addr(0x101),
            len: 1 << 24,
            stride: 4,
        }],
        // Dense patchwork of conflicting strides.
        (0..64u64)
            .map(|i| AffinityRange {
                start: Addr(0x10_0000 + i * 0x1000),
                len: 0x800,
                stride: [1u8, 2, 4, 8][(i % 4) as usize],
            })
            .collect(),
    ];
    for kind in [WorkloadKind::Pbzip2, WorkloadKind::X264] {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        for (i, ranges) in hostile.iter().enumerate() {
            let map = Arc::new(AffinityMap {
                ranges: ranges.clone(),
            });
            assert_seeded_matches::<HashSelect>(
                &trace,
                &map,
                &format!("{} hostile-map-{i}", kind.name()),
            );
        }
    }
}

/// Plan routing is result-invariant for fixed-granularity detection:
/// replaying under a compiled heat plan reports exactly the serialized
/// race set on both replay paths.
#[test]
fn planned_routing_is_race_identical_for_fasttrack() {
    for kind in SHARING_HEAVY {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let plan = analyze(&trace).plan;
        assert!(
            !plan.is_empty(),
            "{}: heat pass produced no buckets",
            kind.name()
        );
        let proto = FastTrack::with_granularity(Granularity::Byte);
        let want = race_signature(&replay_sharded(&proto, &trace, 1));
        for shards in [2usize, 4] {
            let routes = plan.compile(shards);
            assert!(!routes.is_empty(), "{} shards={shards}", kind.name());
            let funnel = replay_sharded_planned(&proto, &trace, shards, PruneSet::empty(), &routes);
            let piped =
                replay_pipelined_planned(&proto, &trace, shards, PruneSet::empty(), &routes);
            assert_eq!(
                race_signature(&funnel),
                want,
                "{} shards={shards}: planned funnel diverged",
                kind.name()
            );
            assert_eq!(
                race_signature(&piped),
                want,
                "{} shards={shards}: planned pipeline diverged",
                kind.name()
            );
        }
    }
}

/// The lock-graph pass on a classic AB-BA inversion workload produces
/// exactly the expected warning set — one cycle naming both locks,
/// nothing else — deterministically.
#[test]
fn lock_inversion_workload_yields_exact_warning_set() {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    // Thread 0 nests L1 -> L2, thread 1 nests L2 -> L1, both guarding
    // the same counter, plus innocuous consistently-ordered traffic.
    b.locked(0u32, 1u32, |b| {
        b.locked(0u32, 2u32, |b| {
            b.write(0u32, 0x100u64, AccessSize::U64);
        });
    });
    b.locked(1u32, 2u32, |b| {
        b.locked(1u32, 1u32, |b| {
            b.write(1u32, 0x100u64, AccessSize::U64);
        });
    });
    for t in [0u32, 1u32] {
        b.locked(t, 3u32, |b| {
            b.locked(t, 4u32, |b| {
                b.write(t, 0x200u64, AccessSize::U64);
            });
        });
    }
    b.join(0u32, 1u32);
    let trace = b.build();
    let first = analyze(&trace);
    let second = analyze(&trace);
    assert_eq!(first.warnings, second.warnings, "warnings must be stable");
    assert_eq!(
        first.warnings,
        vec![AnalysisWarning::LockOrderCycle {
            locks: vec![LockId(1), LockId(2)]
        }]
    );
}

// ---- property-based: random traces × random maps --------------------

#[derive(Clone, Debug)]
enum Op {
    Write(u8, u16, u8),
    Read(u8, u16, u8),
    Locked(u8, u8, u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    fn size() -> impl Strategy<Value = u8> {
        prop_oneof![Just(1u8), Just(2), Just(4), Just(8)]
    }
    prop_oneof![
        (0u8..2, any::<u16>(), size()).prop_map(|(t, a, s)| Op::Write(t, a, s)),
        (0u8..2, any::<u16>(), size()).prop_map(|(t, a, s)| Op::Read(t, a, s)),
        (0u8..2, 1u8..4, any::<u16>()).prop_map(|(t, l, a)| Op::Locked(t, l, a)),
    ]
}

fn arb_map() -> impl Strategy<Value = AffinityMap> {
    proptest::collection::vec(
        (
            any::<u16>(),
            1u64..512,
            prop_oneof![Just(1u8), Just(2), Just(4), Just(8)],
        ),
        0..6,
    )
    .prop_map(|mut raw| {
        // Sorted, disjoint ranges — the invariant `analyze` maintains.
        raw.sort_by_key(|r| r.0);
        let mut ranges: Vec<AffinityRange> = Vec::new();
        for (start, len, stride) in raw {
            let start = 0x1000 + start as u64;
            if ranges.last().is_none_or(|p| p.start.0 + p.len <= start) {
                ranges.push(AffinityRange {
                    start: Addr(start),
                    len,
                    stride,
                });
            }
        }
        AffinityMap { ranges }
    })
}

fn size_of(bytes: u8) -> AccessSize {
    match bytes {
        1 => AccessSize::U8,
        2 => AccessSize::U16,
        4 => AccessSize::U32,
        _ => AccessSize::U64,
    }
}

fn build(ops: &[Op]) -> Trace {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    for op in ops {
        match *op {
            Op::Write(t, a, s) => {
                b.write(t as u32, 0x1000 + a as u64, size_of(s));
            }
            Op::Read(t, a, s) => {
                b.read(t as u32, 0x1000 + a as u64, size_of(s));
            }
            Op::Locked(t, l, a) => {
                b.locked(t as u32, l as u32, |b| {
                    b.write(t as u32, 0x1000 + a as u64, AccessSize::U32);
                });
            }
        }
    }
    b.join(0u32, 1u32);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary traces and arbitrary (valid-shape) affinity maps,
    /// the seeded dynamic detector reports exactly the unseeded race
    /// set with exactly the unseeded sharing decisions.
    #[test]
    fn seeded_equals_unseeded_on_random_inputs(
        ops in proptest::collection::vec(arb_op(), 1..80),
        map in arb_map(),
        shards in 1usize..4,
    ) {
        let trace = build(&ops);
        let map = Arc::new(map);
        let cold = DynamicGranularityOn::<HashSelect>::new();
        let mut warm = DynamicGranularityOn::<HashSelect>::new();
        warm.set_affinity(Arc::clone(&map));
        let c = replay_sharded(&cold, &trace, shards);
        let w = replay_sharded(&warm, &trace, shards);
        prop_assert_eq!(race_signature(&w), race_signature(&c));
        prop_assert_eq!(w.stats.same_epoch, c.stats.same_epoch);
        prop_assert_eq!(w.sharing_summary(), c.sharing_summary());
    }
}
