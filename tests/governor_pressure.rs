//! Integration tests for the process memory governor (DESIGN.md §18).
//!
//! The governor's contract is *deterministic graceful degradation*: a
//! run under `--memory-limit` must (a) complete instead of aborting,
//! (b) walk the same pressure-ladder rungs at the same event offsets on
//! every engine and every repetition, and (c) be invisible — bit for
//! bit — when the limit gives full headroom. These tests drive the
//! library API the CLI wraps, across the funnel and SPSC-pipeline
//! engines at 1/2/4 shards, over a workload × detector × cap matrix.

use dgrace::detectors::{race_signature, FastTrack, Governed, GovernorSpec};
use dgrace::prelude::DynamicGranularity;
use dgrace::runtime::{replay_pipelined, replay_sharded};
use dgrace::trace::Trace;
use dgrace::workloads::{Workload, WorkloadKind};

fn gen(name: &str, scale: f64) -> Trace {
    let kind = WorkloadKind::from_name(name).expect("workload name");
    Workload::new(kind).with_scale(scale).generate().0
}

/// Ungoverned modeled peak for a single serialized run — the reference
/// the caps in these tests are carved from.
fn ungoverned_peak(trace: &Trace) -> u64 {
    replay_sharded(&FastTrack::new(), trace, 1)
        .stats
        .peak_total_bytes as u64
}

#[test]
fn ladder_is_deterministic_across_runs_and_engines() {
    let trace = gen("pbzip2", 0.5);
    let limit = (ungoverned_peak(&trace) / 2).max(1);
    for shards in [1usize, 2, 4] {
        let proto = Governed::new(FastTrack::new(), GovernorSpec::for_limit(limit, shards));
        let a = replay_sharded(&proto, &trace, shards);
        let b = replay_sharded(&proto, &trace, shards);
        assert_eq!(a, b, "funnel runs must be identical (shards={shards})");
        let c = replay_pipelined(&proto, &trace, shards);
        assert_eq!(
            a, c,
            "pipeline must reproduce the funnel, transitions included (shards={shards})"
        );

        let g = a.governor.as_ref().expect("a 50% cap engages the ladder");
        assert!(g.peak_rung >= 1, "shards={shards}");
        assert!(g.decisions > 0);
        assert!(!g.transitions.is_empty());
        // Transition logs are merged sorted by (event, shard) and every
        // transition actually changes the rung.
        for w in g.transitions.windows(2) {
            assert!((w[0].event, w[0].shard) <= (w[1].event, w[1].shard));
        }
        for t in &g.transitions {
            assert_ne!(t.from, t.to);
            assert!(t.shard < shards);
        }
    }
}

#[test]
fn full_headroom_is_bit_identical_to_ungoverned() {
    let trace = gen("dedup", 0.5);
    let limit = ungoverned_peak(&trace).saturating_mul(100).max(1 << 30);
    for shards in [1usize, 2, 4] {
        let plain = replay_sharded(&FastTrack::new(), &trace, shards);
        let proto = Governed::new(FastTrack::new(), GovernorSpec::for_limit(limit, shards));
        let governed = replay_sharded(&proto, &trace, shards);
        assert_eq!(
            plain, governed,
            "an unengaged governor must be invisible (shards={shards})"
        );
        assert!(governed.governor.is_none(), "no report without engagement");
    }
}

/// Workloads whose races stay hot (the racing cells are re-touched
/// throughout the run) must come through a 50% cap with the race set
/// fully intact: rung-1 eviction only sheds cold state, and rungs 2–3
/// only coarsen/sample *new* admissions.
#[test]
fn half_cap_completes_with_hot_races_intact() {
    for name in ["facesim", "streamcluster", "canneal"] {
        let trace = gen(name, 0.5);
        let limit = (ungoverned_peak(&trace) / 2).max(1);
        for shards in [1usize, 2, 4] {
            let plain = replay_sharded(&FastTrack::new(), &trace, shards);
            let proto = Governed::new(FastTrack::new(), GovernorSpec::for_limit(limit, shards));
            let governed = replay_sharded(&proto, &trace, shards);
            // The run completes: every event of the trace was processed.
            assert_eq!(
                governed.stats.events,
                trace.len() as u64,
                "{name} shards={shards}"
            );
            let g = governed.governor.as_ref().expect("cap engages");
            assert!(g.peak_rung >= 1, "{name} shards={shards}");
            assert!(
                !plain.races.is_empty(),
                "{name}: baseline must have races for this test to mean anything"
            );
            assert_eq!(
                race_signature(&governed),
                race_signature(&plain),
                "{name}: peak rung {} lost or invented races (shards={shards})",
                g.peak_rung
            );
        }
    }
}

/// When pressure *does* cost recall — a race whose prior access went
/// cold and was evicted — the loss must be flagged, never silent: the
/// report carries `budget_degraded` and an attached governor block, so
/// both the human rendering and `--json` surface the caveat.
#[test]
fn recall_loss_under_pressure_is_flagged_not_silent() {
    let trace = gen("pbzip2", 0.5);
    let plain = replay_sharded(&FastTrack::new(), &trace, 1);
    assert!(!plain.races.is_empty(), "baseline race exists");
    let limit = ((plain.stats.peak_total_bytes as u64) / 2).max(1);
    let proto = Governed::new(FastTrack::new(), GovernorSpec::for_limit(limit, 1));
    let governed = replay_sharded(&proto, &trace, 1);
    assert_eq!(governed.stats.events, trace.len() as u64, "still completes");
    if race_signature(&governed) != race_signature(&plain) {
        assert!(
            governed.stats.evicted > 0,
            "loss can only come from eviction"
        );
        assert!(
            governed.budget_degraded,
            "a lossy governed run must carry the budget_degraded flag"
        );
        assert!(governed.is_degraded());
        assert!(governed.governor.is_some());
    }
}

/// The synthetic-pressure fault-injection matrix: workloads × detectors
/// × caps. Every cell must complete without abort, be deterministic
/// under repetition, and — for the fixed-granularity detector — never
/// *invent* a race the ungoverned run did not report (pressure can only
/// lose recall, never soundness).
#[test]
fn synthetic_pressure_matrix_survives_tight_caps() {
    for name in ["pbzip2", "dedup", "ffmpeg"] {
        let trace = gen(name, 0.4);
        let peak = ungoverned_peak(&trace);
        let plain_byte = replay_sharded(&FastTrack::new(), &trace, 2);
        let plain_addrs = plain_byte.race_addrs();
        for pct in [50u64, 30, 15] {
            let limit = (peak * pct / 100).max(1);

            let byte = Governed::new(FastTrack::new(), GovernorSpec::for_limit(limit, 2));
            let a = replay_sharded(&byte, &trace, 2);
            let b = replay_sharded(&byte, &trace, 2);
            assert_eq!(a, b, "{name} @{pct}%: byte runs must be identical");
            assert_eq!(a.stats.events, trace.len() as u64, "{name} @{pct}%");
            for r in &a.races {
                assert!(
                    plain_addrs.contains(&r.addr),
                    "{name} @{pct}%: governed byte run invented a race at {}",
                    r.addr
                );
            }

            let dynamic =
                Governed::new(DynamicGranularity::new(), GovernorSpec::for_limit(limit, 2));
            let c = replay_sharded(&dynamic, &trace, 2);
            let d = replay_sharded(&dynamic, &trace, 2);
            assert_eq!(c, d, "{name} @{pct}%: dynamic runs must be identical");
            assert_eq!(c.stats.events, trace.len() as u64, "{name} @{pct}%");
        }

        // The tightest cap must actually exercise the ladder somewhere
        // in the matrix — otherwise the cells above proved nothing.
        let tight = Governed::new(
            FastTrack::new(),
            GovernorSpec::for_limit((peak * 15 / 100).max(1), 2),
        );
        let rep = replay_sharded(&tight, &trace, 2);
        let g = rep.governor.expect("15% cap engages the ladder");
        assert!(g.peak_rung >= 1, "{name}: tight cap never engaged");
    }
}
