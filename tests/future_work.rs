//! The paper's §VII future-work extensions, implemented and verified:
//! write-guided read sharing and post-second-epoch re-decisions.

use dgrace::core::{DynamicConfig, DynamicGranularity, VcState};
use dgrace::detectors::{DetectorExt, OracleDetector};
use dgrace::prelude::*;
use dgrace::workloads::{Workload, WorkloadKind};

const X: u64 = 0x9000;

/// Build a trace where two adjacent words are read together (equal read
/// clocks) but their *write* locations are protected by different locks
/// (separate write clocks): the guided configuration must refuse to
/// share the reads.
fn guided_scenario() -> Trace {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    // Epoch 1: T1 writes each word under its own lock (write plane
    // separates), then reads both together (read plane would share).
    b.locked(1u32, 10u32, |t| {
        t.write(1u32, X, AccessSize::U32);
    })
    .locked(1u32, 11u32, |t| {
        t.write(1u32, X + 4, AccessSize::U32);
    })
    .read(1u32, X, AccessSize::U32)
    .read(1u32, X + 4, AccessSize::U32)
    // Epoch boundary, then the same pattern again so the reads reach
    // their firm (second-epoch) decision.
    .release(1u32, 12u32)
    .read(1u32, X, AccessSize::U32)
    .read(1u32, X + 4, AccessSize::U32);
    b.build()
}

#[test]
fn write_guidance_vetoes_read_sharing() {
    let trace = guided_scenario();

    let mut plain = DynamicGranularity::new();
    for ev in trace.iter() {
        plain.on_event(ev);
    }
    let plain_group = plain.read_group(Addr(X)).unwrap();
    assert_eq!(
        plain_group.members.len(),
        2,
        "unguided: the equal read clocks share"
    );

    let mut guided = DynamicGranularity::with_config(DynamicConfig::write_guided());
    for ev in trace.iter() {
        guided.on_event(ev);
    }
    let guided_group = guided.read_group(Addr(X)).unwrap();
    assert_eq!(
        guided_group.members,
        vec![Addr(X)],
        "guided: separately-locked writes veto read sharing"
    );
}

#[test]
fn write_guidance_allows_sharing_when_writes_share() {
    // Both words written together (write plane shares), read together:
    // guidance permits the read share.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .write(1u32, X, AccessSize::U32)
        .write(1u32, X + 4, AccessSize::U32)
        .release(1u32, 12u32)
        .write(1u32, X, AccessSize::U32)
        .write(1u32, X + 4, AccessSize::U32)
        .read(1u32, X, AccessSize::U32)
        .read(1u32, X + 4, AccessSize::U32)
        .release(1u32, 13u32)
        .read(1u32, X, AccessSize::U32)
        .read(1u32, X + 4, AccessSize::U32);
    let trace = b.build();
    let mut guided = DynamicGranularity::with_config(DynamicConfig::write_guided());
    for ev in trace.iter() {
        guided.on_event(ev);
    }
    let group = guided.read_group(Addr(X)).unwrap();
    assert_eq!(group.members.len(), 2, "{group:?}");
}

#[test]
fn write_guidance_preserves_planted_findings() {
    for kind in [
        WorkloadKind::Streamcluster,
        WorkloadKind::X264,
        WorkloadKind::Dedup,
    ] {
        let (trace, truth) = Workload::new(kind).with_scale(0.05).generate();
        let rep = DynamicGranularity::with_config(DynamicConfig::write_guided()).run(&trace);
        for a in &truth.racy_addrs {
            assert!(
                rep.race_addrs().contains(a),
                "{}: guided config missed planted race at {a:?}",
                kind.name()
            );
        }
    }
}

/// §VII #2: two words whose clocks *diverge* at the second epoch (so
/// the firm decision is Private) later converge again; with a
/// re-decision budget they re-group.
#[test]
fn redecisions_regroup_converged_neighbors() {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        // Epoch 1: only X is written — no neighbor to share with.
        .write(1u32, X, AccessSize::U32)
        .release(1u32, 10u32)
        // Epoch 2: X again (second-epoch → Private; X+4 absent),
        // then X+4's first access (cannot share: clocks differ).
        .write(1u32, X, AccessSize::U32)
        .write(1u32, X + 4, AccessSize::U32)
        .release(1u32, 10u32)
        // Epoch 3: X+4 second-epoch (clock differs from X — Private).
        .write(1u32, X + 4, AccessSize::U32)
        .release(1u32, 10u32)
        // Epoch 4: both written together — clocks converge.
        .write(1u32, X, AccessSize::U32)
        .write(1u32, X + 4, AccessSize::U32);
    let trace = b.build();

    // Paper machine: the firm decisions were final — still private.
    let mut paper = DynamicGranularity::new();
    for ev in trace.iter() {
        paper.on_event(ev);
    }
    assert_eq!(paper.write_group(Addr(X)).unwrap().members, vec![Addr(X)]);

    // With a re-decision budget the converged clocks re-group.
    let mut adaptive = DynamicGranularity::with_config(DynamicConfig::with_redecisions(2));
    for ev in trace.iter() {
        adaptive.on_event(ev);
    }
    let group = adaptive.write_group(Addr(X)).unwrap();
    assert_eq!(
        group.members,
        vec![Addr(X), Addr(X + 4)],
        "re-decision should re-group the converged neighbors"
    );
    assert_eq!(group.state, VcState::Shared);
}

#[test]
fn redecision_budget_is_bounded() {
    // A word whose neighbor never matches: the budget must cap the
    // number of attempts (observable through determinism + no panic on
    // long runs; the cell's counter saturates at the configured max).
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32).write(1u32, X, AccessSize::U32);
    for _ in 0..20 {
        b.release(1u32, 10u32).write(1u32, X, AccessSize::U32);
    }
    let trace = b.build();
    let rep = DynamicGranularity::with_config(DynamicConfig::with_redecisions(3)).run(&trace);
    assert!(rep.races.is_empty());
    let sh = rep.stats.sharing.unwrap();
    assert_eq!(sh.shares, 0, "nothing to share with");
}

#[test]
fn redecisions_preserve_precision_on_workloads() {
    for kind in [WorkloadKind::Facesim, WorkloadKind::Hmmsearch] {
        let (trace, truth) = Workload::new(kind).with_scale(0.05).generate();
        let oracle = OracleDetector::new().run(&trace);
        assert_eq!(oracle.race_addrs(), truth.racy_addrs);
        let rep = DynamicGranularity::with_config(DynamicConfig::with_redecisions(2)).run(&trace);
        for a in &truth.racy_addrs {
            assert!(
                rep.race_addrs().contains(a),
                "{}: redecisions missed planted race at {a:?}",
                kind.name()
            );
        }
    }
}

#[test]
fn redecisions_tighten_memory_on_late_converging_data() {
    // A large array whose elements' clocks diverge at second epoch
    // (staggered touches) but converge afterwards: the adaptive machine
    // ends with fewer clocks.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    let n = 64u64;
    // Stagger: element i touched twice, each time in its own epoch, so
    // its *firm* (second-epoch) decision sees no equal-clock neighbor
    // and lands Private — final under the paper's machine.
    for i in 0..n {
        b.write(1u32, X + i * 8, AccessSize::U64);
        b.release(1u32, 10u32);
        b.write(1u32, X + i * 8, AccessSize::U64);
        b.release(1u32, 10u32);
    }
    // Now sweep the whole array repeatedly (clocks converge per sweep).
    for _ in 0..4 {
        for i in 0..n {
            b.write(1u32, X + i * 8, AccessSize::U64);
        }
        b.release(1u32, 10u32);
    }
    let trace = b.build();
    let paper = DynamicGranularity::new().run(&trace);
    let adaptive = DynamicGranularity::with_config(DynamicConfig::with_redecisions(4)).run(&trace);
    // The stagger phase fixes the *peak* for both machines; the adaptive
    // one then collapses the 64 private clocks back into groups, visible
    // as extra clock frees (rejoins) and sharing events.
    let extra_frees = adaptive.stats.vc_frees.saturating_sub(paper.stats.vc_frees);
    assert!(
        extra_frees >= 32,
        "adaptive should rejoin most of the array: {} extra frees",
        extra_frees
    );
    let shares = adaptive.stats.sharing.as_ref().unwrap().shares;
    assert!(shares >= 32, "shares {shares}");
    assert_eq!(paper.stats.sharing.unwrap().shares, 0);
    assert!(paper.races.is_empty() && adaptive.races.is_empty());
}
