//! Differential soundness of ahead-of-time pruning: for every workload
//! and every shard count, detection with a `--prune-with` summary must
//! report **exactly** the races of an unpruned run — pruning may only
//! remove work, never findings — while actually dropping a nonzero
//! number of accesses on the workloads the analysis can classify.
//!
//! The exact detectors (FastTrack at byte and word granularity, DJIT+)
//! get the strong byte-identical assertion. The dynamic-granularity
//! detector shares vector clocks between neighboring locations, so
//! pruning can shift which *artifacts* appear; it gets the scoped
//! assertions the paper's own precision argument supports: every
//! planted race is still found, and any extra report is flagged
//! `tainted` (a sharing artifact, not a miss).

use dgrace::analysis::analyze;
use dgrace::core::DynamicGranularity;
use dgrace::detectors::{race_signature, Djit, FastTrack, Granularity, ShardableDetector};
use dgrace::runtime::{replay_sharded, replay_sharded_pruned};
use dgrace::workloads::{Workload, WorkloadKind};

const SCALE: f64 = 0.05;
const SHARDS: [usize; 3] = [1, 2, 4];

/// The exact detectors with the granule their prune set must use: an
/// access is pruned only if every granularity-widened location it
/// touches is provably race-free.
fn exact_detectors() -> Vec<(Box<dyn ShardableDetector>, u64)> {
    vec![
        (
            Box::new(FastTrack::with_granularity(Granularity::Byte)) as Box<dyn ShardableDetector>,
            1,
        ),
        (Box::new(FastTrack::with_granularity(Granularity::Word)), 4),
        (Box::new(Djit::new()), 1),
    ]
}

/// The headline guarantee: pruned and unpruned runs agree byte-for-byte
/// on the race set (addresses and kinds) for every workload, every
/// exact detector, and every shard count — and the books balance:
/// `accesses + pruned` under pruning equals the unpruned access count.
#[test]
fn pruned_detection_is_race_identical_for_exact_detectors() {
    for kind in WorkloadKind::ALL {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let summary = analyze(&trace);
        for (proto, granule) in exact_detectors() {
            let prune = summary.prune_set(granule, 0);
            for shards in SHARDS {
                let bare = replay_sharded(proto.as_ref(), &trace, shards);
                let pruned = replay_sharded_pruned(proto.as_ref(), &trace, shards, prune.clone());
                let tag = format!("{} on {} shards={shards}", bare.detector, kind.name());
                assert_eq!(
                    race_signature(&pruned),
                    race_signature(&bare),
                    "{tag}: race sets differ"
                );
                assert_eq!(
                    pruned.stats.events,
                    trace.len() as u64,
                    "{tag}: events must still count pruned accesses"
                );
                assert_eq!(
                    pruned.stats.accesses + pruned.stats.pruned,
                    bare.stats.accesses,
                    "{tag}: access conservation"
                );
            }
        }
    }
}

/// The analysis is not vacuous: every workload has provably
/// thread-local traffic, and the read-only pass fires on the workloads
/// that stage data single-threaded before sharing it read-only.
#[test]
fn analysis_classifies_nontrivially() {
    for kind in WorkloadKind::ALL {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let summary = analyze(&trace);
        assert!(
            summary.stats.thread_local.accesses > 0,
            "{}: no thread-local accesses classified",
            kind.name()
        );
        // And the prune actually drops events in a real detection run.
        let prune = summary.prune_set(1, 0);
        let rep = replay_sharded_pruned(&FastTrack::new(), &trace, 2, prune);
        assert!(
            rep.stats.pruned > 0,
            "{}: prune set dropped nothing",
            kind.name()
        );
    }
    for kind in [WorkloadKind::Raytrace, WorkloadKind::Ffmpeg] {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let summary = analyze(&trace);
        assert!(
            summary.stats.read_only.accesses > 0,
            "{}: read-only pass found nothing",
            kind.name()
        );
    }
    for kind in [WorkloadKind::Ferret, WorkloadKind::Pbzip2] {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let summary = analyze(&trace);
        assert!(
            summary.stats.locked.accesses > 0,
            "{}: lockset pass found nothing",
            kind.name()
        );
    }
}

/// Dynamic granularity under pruning (256-byte margin): every planted
/// race survives, and anything beyond the unpruned report is a tainted
/// sharing artifact.
#[test]
fn pruned_dynamic_detector_keeps_planted_races() {
    for kind in WorkloadKind::ALL {
        let (trace, truth) = Workload::new(kind).with_scale(SCALE).generate();
        let summary = analyze(&trace);
        let prune = summary.prune_set(1, 256);
        for shards in SHARDS {
            let bare = replay_sharded(&DynamicGranularity::new(), &trace, shards);
            let pruned =
                replay_sharded_pruned(&DynamicGranularity::new(), &trace, shards, prune.clone());
            let bare_addrs = bare.race_addrs();
            let pruned_addrs = pruned.race_addrs();
            for addr in &truth.racy_addrs {
                assert!(
                    pruned_addrs.contains(addr),
                    "{} shards={shards}: planted race at {addr:?} lost under pruning",
                    kind.name()
                );
            }
            for race in &pruned.races {
                assert!(
                    bare_addrs.contains(&race.addr) || race.tainted,
                    "{} shards={shards}: untainted new report at {:?}",
                    kind.name(),
                    race.addr
                );
            }
        }
    }
}
