//! Table 5's state-machine ablation, asserted as invariants across all
//! workloads.

use dgrace::core::{DynamicConfig, DynamicGranularity};
use dgrace::detectors::DetectorExt;
use dgrace::workloads::{Workload, WorkloadKind};

const SCALE: f64 = 0.05;

/// Temporary sharing at Init never increases peak memory, and on the
/// one-epoch-data workloads (dedup, pbzip2, ferret) it shrinks the peak
/// clock population substantially — the point of Table 5's memory
/// columns.
#[test]
fn sharing_at_init_saves_memory() {
    for kind in WorkloadKind::ALL {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let with = DynamicGranularity::with_config(DynamicConfig::paper_default()).run(&trace);
        let without =
            DynamicGranularity::with_config(DynamicConfig::no_sharing_at_init()).run(&trace);
        assert!(
            with.stats.peak_total_bytes <= without.stats.peak_total_bytes,
            "{}: init sharing increased memory ({} vs {})",
            kind.name(),
            with.stats.peak_total_bytes,
            without.stats.peak_total_bytes
        );
    }
    for kind in [
        WorkloadKind::Dedup,
        WorkloadKind::Pbzip2,
        WorkloadKind::Ferret,
    ] {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let with = DynamicGranularity::with_config(DynamicConfig::paper_default()).run(&trace);
        let without =
            DynamicGranularity::with_config(DynamicConfig::no_sharing_at_init()).run(&trace);
        assert!(
            with.stats.peak_vc_count * 2 <= without.stats.peak_vc_count,
            "{}: expected ≥2x fewer clocks with Init sharing ({} vs {})",
            kind.name(),
            with.stats.peak_vc_count,
            without.stats.peak_vc_count
        );
    }
}

/// Removing the Init state (one permanent sharing decision at first
/// access) floods several workloads with false alarms — Table 5's race
/// columns.
#[test]
fn no_init_state_causes_false_alarms() {
    for kind in WorkloadKind::ALL {
        let (trace, truth) = Workload::new(kind).with_scale(SCALE).generate();
        let without = DynamicGranularity::with_config(DynamicConfig::no_init_state()).run(&trace);
        assert!(
            without.races.len() >= truth.racy_addrs.len(),
            "{}: no-Init must still catch the planted races",
            kind.name()
        );
    }
    // The initialize-together-protect-separately workloads flood
    // catastrophically (thousands of false alarms), as in Table 5.
    for kind in [WorkloadKind::Facesim, WorkloadKind::Fluidanimate] {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let with = DynamicGranularity::with_config(DynamicConfig::paper_default()).run(&trace);
        let without = DynamicGranularity::with_config(DynamicConfig::no_init_state()).run(&trace);
        assert!(
            without.races.len() > 100 * with.races.len(),
            "{}: expected a false-alarm flood, got {} vs {}",
            kind.name(),
            without.races.len(),
            with.races.len()
        );
    }
}

/// The Init-state false alarms really are the sharing kind: all flagged
/// tainted.
#[test]
fn no_init_state_extras_are_tainted() {
    for kind in [WorkloadKind::Facesim, WorkloadKind::Fluidanimate] {
        let (trace, truth) = Workload::new(kind).with_scale(SCALE).generate();
        let rep = DynamicGranularity::with_config(DynamicConfig::no_init_state()).run(&trace);
        for race in &rep.races {
            if !truth.racy_addrs.contains(&race.addr) {
                assert!(race.tainted, "{}: untainted false alarm", kind.name());
            }
        }
    }
}

/// The first-epoch scan distance trades sharing coverage for time, never
/// correctness: planted races are found at every distance.
#[test]
fn scan_distance_does_not_change_planted_findings() {
    for scan in [0u64, 2, 8, 64, 256] {
        let cfg = DynamicConfig {
            first_epoch_scan: scan,
            ..DynamicConfig::default()
        };
        let (trace, truth) = Workload::new(WorkloadKind::Dedup)
            .with_scale(SCALE)
            .generate();
        let rep = DynamicGranularity::with_config(cfg).run(&trace);
        for a in &truth.racy_addrs {
            assert!(
                rep.race_addrs().contains(a),
                "scan {scan}: missed planted race at {a:?}"
            );
        }
    }
}

/// Group-race reporting is the only difference between the default and
/// the `report_group_races: false` configuration.
#[test]
fn group_reporting_only_adds_group_members() {
    let (trace, _) = Workload::new(WorkloadKind::X264)
        .with_scale(SCALE)
        .generate();
    let all = DynamicGranularity::new().run(&trace);
    let cfg = DynamicConfig {
        report_group_races: false,
        ..DynamicConfig::default()
    };
    let firsts = DynamicGranularity::with_config(cfg).run(&trace);
    assert!(firsts.races.len() <= all.races.len());
    // Every suppressed report belonged to a shared group.
    assert_eq!(
        all.races.iter().filter(|r| r.share_count == 1).count(),
        firsts.races.iter().filter(|r| r.share_count == 1).count(),
    );
}
