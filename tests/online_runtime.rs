//! End-to-end online detection with real threads.

use std::sync::Arc;
use std::thread;

use dgrace::core::DynamicGranularity;
use dgrace::detectors::FastTrack;
use dgrace::runtime::Runtime;

/// A correctly locked producer/consumer program is race-free under the
/// live dynamic detector.
#[test]
fn locked_pipeline_is_race_free() {
    let rt = Runtime::new(DynamicGranularity::new());
    let main = rt.main();
    let buf = rt.array(128);
    let m = Arc::new(rt.mutex(0usize)); // protects `buf` and the cursor

    let mut joins = Vec::new();
    let mut tickets = Vec::new();
    for _ in 0..4 {
        let (child, ticket) = main.fork();
        let buf = buf.clone();
        let m = Arc::clone(&m);
        tickets.push(ticket);
        joins.push(thread::spawn(move || {
            for _ in 0..64 {
                let mut cursor = m.lock(&child);
                let i = *cursor % buf.len();
                let v = buf.get(&child, i);
                buf.set(&child, i, v + 1);
                *cursor += 1;
            }
        }));
    }
    for jh in joins {
        jh.join().unwrap();
    }
    for t in tickets {
        main.join(t);
    }
    let report = rt.finish();
    assert!(report.races.is_empty(), "{:?}", report.races);
    // finish() flushes every per-thread buffer, so the count is exact:
    // 1 alloc + 4 forks + 4 joins + 4 threads x 64 iterations x
    // (acquire + read + write + release).
    assert_eq!(report.stats.events, 1 + 4 + 4 + 4 * 64 * 4);
}

/// Regression test for the finish protocol: with *no* sync operations at
/// all, every access sits in a per-thread buffer until `finish` — which
/// must flush them all, so the event count is exact, not a lower bound.
#[test]
fn finish_flushes_unsynced_buffers() {
    for shards in [1usize, 4] {
        let rt = Runtime::sharded(&DynamicGranularity::new(), shards);
        let main = rt.main();
        let cells: Vec<_> = (0..5).map(|_| rt.cell(0)).collect();
        // 5 cells x 7 writes each, all buffered (no sync, no overflow).
        for c in &cells {
            for v in 0..7 {
                c.set(&main, v);
            }
        }
        let report = rt.finish();
        assert_eq!(
            report.stats.events, 35,
            "shards={shards}: finish must flush all buffers"
        );
        assert_eq!(report.stats.accesses, 35, "shards={shards}");
        assert!(report.races.is_empty(), "single thread cannot race");
    }
}

/// A deliberately racy program is caught by the live detector, and the
/// racy address matches the shared cell.
#[test]
fn unlocked_writer_is_caught() {
    let rt = Runtime::new(FastTrack::new());
    let main = rt.main();
    let cell = rt.cell(0);

    let (child, ticket) = main.fork();
    let c2 = cell.clone();
    let jh = thread::spawn(move || {
        for i in 0..16 {
            c2.set(&child, i);
        }
    });
    for i in 0..16 {
        cell.set(&main, 100 + i);
    }
    jh.join().unwrap();
    main.join(ticket);

    let report = rt.finish();
    assert_eq!(report.races.len(), 1, "first race per location");
    assert_eq!(report.races[0].addr, cell.addr());
}

/// Fork/join edges order accesses: sequential handoff through join is
/// race-free even without locks.
#[test]
fn join_edge_orders_accesses() {
    let rt = Runtime::new(DynamicGranularity::new());
    let main = rt.main();
    let arr = rt.array(32);
    arr.fill(&main, 1);

    let (child, ticket) = main.fork();
    let a2 = arr.clone();
    let jh = thread::spawn(move || {
        for i in 0..32 {
            let v = a2.get(&child, i);
            a2.set(&child, i, v * 2);
        }
    });
    jh.join().unwrap();
    main.join(ticket);

    // Main reads everything back after the join — ordered.
    let mut sum = 0;
    for i in 0..32 {
        sum += arr.get(&main, i);
    }
    assert_eq!(sum, 64);
    let report = rt.finish();
    assert!(report.races.is_empty(), "{:?}", report.races);
}

/// The dynamic detector groups a tracked array's clocks online just as
/// it does offline.
#[test]
fn online_sharing_matches_offline_shape() {
    let rt = Runtime::new(DynamicGranularity::new());
    let main = rt.main();
    let arr = rt.array(256);
    arr.fill(&main, 0); // one epoch, one group
    let report = rt.finish();
    assert!(report.races.is_empty());
    let sh = report.stats.sharing.unwrap();
    assert!(sh.max_group >= 256, "max group {}", sh.max_group);
    assert!(report.stats.peak_vc_count < 16);
}

/// Many detectors work behind the runtime, not just the dynamic one.
#[test]
fn runtime_is_detector_agnostic() {
    let rt = Runtime::new(dgrace::baselines::SegmentDetector::new());
    let main = rt.main();
    let cell = rt.cell(1);
    let (child, ticket) = main.fork();
    let c2 = cell.clone();
    let jh = thread::spawn(move || c2.set(&child, 2));
    cell.set(&main, 3);
    jh.join().unwrap();
    main.join(ticket);
    let report = rt.finish();
    assert_eq!(report.detector, "segment-drd");
    assert_eq!(report.races.len(), 1);
}
