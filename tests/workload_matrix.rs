//! Cross-crate integration: every workload through every detector, with
//! the paper's qualitative shapes asserted.

use dgrace::baselines::{HybridDetector, LockSetDetector, SegmentDetector};
use dgrace::core::DynamicGranularity;
use dgrace::detectors::{
    Detector, DetectorExt, Djit, FastTrack, Granularity, NopDetector, OracleDetector,
};
use dgrace::trace::validate;
use dgrace::workloads::{Workload, WorkloadKind};

const SCALE: f64 = 0.05;

fn all_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(NopDetector::default()),
        Box::new(OracleDetector::new()),
        Box::new(Djit::new()),
        Box::new(FastTrack::with_granularity(Granularity::Byte)),
        Box::new(FastTrack::with_granularity(Granularity::Word)),
        Box::new(FastTrack::with_granularity(Granularity::Fixed(16))),
        Box::new(DynamicGranularity::new()),
        Box::new(SegmentDetector::new()),
        Box::new(HybridDetector::new()),
        Box::new(LockSetDetector::new()),
    ]
}

/// Smoke: every detector consumes every workload without panicking and
/// produces internally consistent statistics.
#[test]
fn every_detector_runs_every_workload() {
    for kind in WorkloadKind::ALL {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        validate(&trace).expect("workload must be structurally valid");
        for mut det in all_detectors() {
            let rep = det.run(&trace);
            assert_eq!(
                rep.stats.events,
                trace.len() as u64,
                "{} on {}: event count",
                rep.detector,
                kind.name()
            );
            assert!(
                rep.stats.same_epoch <= rep.stats.accesses,
                "{} on {}",
                rep.detector,
                kind.name()
            );
        }
    }
}

/// Table 1 memory shape: the dynamic detector's peak shadow footprint is
/// at most the byte detector's, with big wins on the high-locality
/// workloads and parity on canneal.
#[test]
fn dynamic_memory_never_worse_than_byte() {
    for kind in WorkloadKind::ALL {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let byte = FastTrack::new().run(&trace);
        let dynamic = DynamicGranularity::new().run(&trace);
        assert!(
            dynamic.stats.peak_total_bytes <= byte.stats.peak_total_bytes,
            "{}: dynamic {} > byte {}",
            kind.name(),
            dynamic.stats.peak_total_bytes,
            byte.stats.peak_total_bytes
        );
    }
    // The headline cases really collapse (facesim/pbzip2 class).
    for kind in [
        WorkloadKind::Facesim,
        WorkloadKind::Pbzip2,
        WorkloadKind::Hmmsearch,
    ] {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let byte = FastTrack::new().run(&trace);
        let dynamic = DynamicGranularity::new().run(&trace);
        assert!(
            dynamic.stats.peak_vc_count * 4 <= byte.stats.peak_vc_count,
            "{}: expected ≥4x fewer clocks, got {} vs {}",
            kind.name(),
            dynamic.stats.peak_vc_count,
            byte.stats.peak_vc_count
        );
    }
}

/// Table 3 shape: pbzip2 has by far the largest sharing groups.
#[test]
fn pbzip2_has_extreme_sharing() {
    let (trace, _) = Workload::new(WorkloadKind::Pbzip2)
        .with_scale(SCALE)
        .generate();
    let rep = DynamicGranularity::new().run(&trace);
    let sh = rep.stats.sharing.unwrap();
    assert!(sh.max_group >= 512, "max group {}", sh.max_group);
    assert!(sh.avg_share_count > 10.0, "avg {}", sh.avg_share_count);
}

/// Table 4 shape: the same-epoch fraction rises under dynamic
/// granularity for the sweep-style workloads and stays put for canneal.
#[test]
fn same_epoch_fractions_shift_as_in_table4() {
    for (kind, should_rise) in [
        (WorkloadKind::Facesim, true),
        (WorkloadKind::Streamcluster, true),
        (WorkloadKind::Canneal, false),
    ] {
        // Enough iterations for steady-state (post-resharing) sweeps.
        let (trace, _) = Workload::new(kind).with_scale(0.6).generate();
        let byte = FastTrack::new().run(&trace);
        let dynamic = DynamicGranularity::new().run(&trace);
        let b = byte.stats.same_epoch_fraction();
        let d = dynamic.stats.same_epoch_fraction();
        if should_rise {
            assert!(
                d > b + 0.05,
                "{}: expected same-epoch rise, byte {:.2} dyn {:.2}",
                kind.name(),
                b,
                d
            );
        } else {
            assert!(
                (d - b).abs() < 0.05,
                "{}: fractions should match, byte {:.2} dyn {:.2}",
                kind.name(),
                b,
                d
            );
        }
    }
}

/// Table 6 shapes: the segment detector has no per-location index and
/// modest memory; the hybrid detector is the heaviest precise detector.
#[test]
fn case_study_memory_ordering() {
    for kind in [WorkloadKind::Streamcluster, WorkloadKind::Fluidanimate] {
        let (trace, _) = Workload::new(kind).with_scale(SCALE).generate();
        let dynamic = DynamicGranularity::new().run(&trace);
        let seg = SegmentDetector::new().run(&trace);
        let hybrid = HybridDetector::new().run(&trace);
        assert_eq!(seg.stats.peak_hash_bytes, 0, "{}", kind.name());
        assert!(
            hybrid.stats.peak_total_bytes > 2 * dynamic.stats.peak_total_bytes,
            "{}: hybrid {} vs dynamic {}",
            kind.name(),
            hybrid.stats.peak_total_bytes,
            dynamic.stats.peak_total_bytes
        );
    }
}

/// Precision: the three happens-before case-study detectors agree on
/// racy locations for every workload (the paper's observation that the
/// tools found the same races).
#[test]
fn case_study_detectors_agree_on_locations() {
    for kind in WorkloadKind::ALL {
        let (trace, truth) = Workload::new(kind).with_scale(SCALE).generate();
        let seg = SegmentDetector::new().run(&trace);
        let hybrid = HybridDetector::new().run(&trace);
        assert_eq!(seg.race_addrs(), truth.racy_addrs, "{}", kind.name());
        assert_eq!(hybrid.race_addrs(), truth.racy_addrs, "{}", kind.name());
    }
}

/// The dynamic detector's sharing artifacts are all flagged `tainted`.
#[test]
fn dynamic_extras_are_tainted() {
    for kind in [WorkloadKind::X264, WorkloadKind::Streamcluster] {
        let (trace, truth) = Workload::new(kind).with_scale(SCALE).generate();
        let rep = DynamicGranularity::new().run(&trace);
        for race in &rep.races {
            if !truth.racy_addrs.contains(&race.addr) {
                assert!(
                    race.tainted,
                    "{}: artifact at {:?} not flagged",
                    kind.name(),
                    race.addr
                );
            }
        }
    }
}
