//! Happens-before semantics of reader-writer locks, condition variables
//! and barriers, checked across the whole detector stack.

use dgrace::baselines::SegmentDetector;
use dgrace::core::DynamicGranularity;
use dgrace::detectors::{Detector, DetectorExt, Djit, FastTrack, OracleDetector};
use dgrace::prelude::*;
use dgrace::trace::validate;

const X: u64 = 0x7000;

fn hb_detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(OracleDetector::new()),
        Box::new(FastTrack::new()),
        Box::new(Djit::new()),
        Box::new(DynamicGranularity::new()),
        Box::new(SegmentDetector::new()),
    ]
}

fn assert_all(trace: &Trace, expected_races: usize, what: &str) {
    validate(trace).unwrap();
    for mut det in hb_detectors() {
        let rep = det.run(trace);
        assert_eq!(
            rep.race_addrs().len(),
            expected_races,
            "{what}: {} saw {:?}",
            rep.detector,
            rep.race_addrs()
        );
    }
}

#[test]
fn writer_release_orders_reader() {
    // Writer updates x under wrlock; reader reads under rdlock: ordered.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .locked(0u32, 5u32, |t| {
            t.write(0u32, X, AccessSize::U64);
        })
        .read_locked(1u32, 5u32, |t| {
            t.read(1u32, X, AccessSize::U64);
        });
    assert_all(&b.build(), 0, "wrlock→rdlock");
}

#[test]
fn concurrent_readers_do_not_order_each_other() {
    // T1 reads x under rdlock, then T2 *writes* x under rdlock (a bug:
    // writing under a read lock). Readers don't synchronize with each
    // other, so this is a race.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .fork(0u32, 2u32)
        .read_locked(1u32, 5u32, |t| {
            t.read(1u32, X, AccessSize::U64);
        })
        .read_locked(2u32, 5u32, |t| {
            t.write(2u32, X, AccessSize::U64);
        });
    assert_all(&b.build(), 1, "rd–rd write bug");
}

#[test]
fn reader_release_orders_next_writer() {
    // Reader reads x under rdlock; writer then writes under wrlock:
    // the read release → write acquire edge orders them.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .read_locked(0u32, 5u32, |t| {
            t.read(0u32, X, AccessSize::U64);
        })
        .locked(1u32, 5u32, |t| {
            t.write(1u32, X, AccessSize::U64);
        });
    assert_all(&b.build(), 0, "rdlock→wrlock");
}

#[test]
fn cv_signal_orders_waiter() {
    // Producer fills x, signals; consumer waits, then reads: ordered.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .write(0u32, X, AccessSize::U64)
        .locked(0u32, 3u32, |t| {
            t.cv_signal(0u32, 9u32);
        })
        .cv_wait(1u32, 9u32)
        .read(1u32, X, AccessSize::U64);
    assert_all(&b.build(), 0, "signal→wait");
}

#[test]
fn unsignaled_access_still_races() {
    // The consumer skips the wait: the read races with the write.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .write(0u32, X, AccessSize::U64)
        .cv_signal(0u32, 9u32)
        .read(1u32, X, AccessSize::U64); // no cv_wait!
    assert_all(&b.build(), 1, "missing wait");
}

#[test]
fn barrier_orders_phases() {
    // Two workers write disjoint halves, cross the barrier, then read
    // each other's halves — race-free thanks to the barrier.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32).fork(0u32, 2u32);
    b.write(1u32, X, AccessSize::U64)
        .write(2u32, X + 8, AccessSize::U64);
    b.barrier_round(&[1, 2], 7u32);
    b.read(1u32, X + 8, AccessSize::U64)
        .read(2u32, X, AccessSize::U64);
    assert_all(&b.build(), 0, "barrier phases");
}

#[test]
fn missing_barrier_races() {
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32).fork(0u32, 2u32);
    b.write(1u32, X, AccessSize::U64)
        .read(2u32, X, AccessSize::U64); // nobody waited
    assert_all(&b.build(), 1, "no barrier");
}

#[test]
fn rwlock_validation_rejects_misuse() {
    use dgrace::trace::ValidationError;
    // Write-acquire while a reader holds the lock.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .acquire_read(0u32, 5u32)
        .acquire(1u32, 5u32);
    assert!(matches!(
        validate(&b.build()),
        Err(ValidationError::RwLockConflict { .. })
    ));
    // Read-release without holding.
    let mut b = TraceBuilder::new();
    b.release_read(0u32, 5u32);
    assert!(matches!(
        validate(&b.build()),
        Err(ValidationError::ReadReleaseWithoutAcquire { .. })
    ));
    // Barrier departure without arrival.
    let mut b = TraceBuilder::new();
    b.barrier_depart(0u32, 7u32);
    assert!(matches!(
        validate(&b.build()),
        Err(ValidationError::BarrierDepartWithoutArrive { .. })
    ));
    // Two concurrent readers are fine.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .acquire_read(0u32, 5u32)
        .acquire_read(1u32, 5u32)
        .release_read(1u32, 5u32)
        .release_read(0u32, 5u32);
    assert!(validate(&b.build()).is_ok());
}

#[test]
fn new_events_roundtrip_binary_format() {
    use dgrace::trace::io::{from_bytes, to_bytes};
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .acquire_read(1u32, 5u32)
        .release_read(1u32, 5u32)
        .cv_signal(0u32, 9u32)
        .cv_wait(1u32, 9u32)
        .barrier_arrive(0u32, 7u32)
        .barrier_depart(0u32, 7u32);
    let trace = b.build();
    assert_eq!(from_bytes(&to_bytes(&trace)).unwrap(), trace);
}

#[test]
fn dynamic_granularity_shares_across_barrier_phases() {
    // A worker initializes an array, the team crosses a barrier, the
    // worker sweeps it again: the barrier tick separates the epochs, so
    // the firm sharing decision happens and the array re-groups.
    let mut det = DynamicGranularity::new();
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32);
    let mut bb = b;
    bb.write(1u32, X, AccessSize::U64)
        .write(1u32, X + 8, AccessSize::U64)
        .write(1u32, X + 16, AccessSize::U64);
    bb.barrier_round(&[1], 7u32);
    bb.write(1u32, X, AccessSize::U64)
        .write(1u32, X + 8, AccessSize::U64)
        .write(1u32, X + 16, AccessSize::U64);
    let trace = bb.build();
    for ev in trace.iter() {
        det.on_event(ev);
    }
    let snap = det.write_group(Addr(X)).unwrap();
    assert_eq!(snap.members.len(), 3, "{snap:?}");
    let rep = det.finish();
    assert!(rep.races.is_empty());
}
