use dgrace_detectors::{Detector, DetectorExt, FastTrack, Granularity, StaticPruneFilter};
use dgrace_trace::{validate::validate, AccessSize, TraceBuilder};

#[test]
fn word_prune_equivalence_counterexample() {
    // T0 writes U16@0x100, T1 writes U16@0x102 — concurrent, disjoint bytes.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .write(0u32, 0x100u64, AccessSize::U16)
        .write(1u32, 0x102u64, AccessSize::U16)
        .join(0u32, 1u32);
    let trace = b.build();
    assert_eq!(validate(&trace), Ok(()));
    let summary = dgrace_analysis::analyze(&trace);
    eprintln!("ranges: {:?}", summary.ranges);
    let prune = summary.prune_set(4, 0); // word detector compile per CLI
    let bare = FastTrack::with_granularity(Granularity::Word).run(&trace);
    let pruned =
        StaticPruneFilter::new(FastTrack::with_granularity(Granularity::Word), prune).run(&trace);
    eprintln!(
        "bare races: {}, pruned races: {}, pruned count: {}",
        bare.races.len(),
        pruned.races.len(),
        pruned.stats.pruned
    );
    assert_eq!(
        bare.races.len(),
        pruned.races.len(),
        "word-granularity race set changed by pruning"
    );
}

#[test]
fn double_join_hides_live_thread() {
    // fork T1, fork T2, join T1 twice (passes validate), then main writes
    // X while T2 concurrently reads it — a genuine race.
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .fork(0u32, 2u32)
        .read(1u32, 0x500u64, AccessSize::U8)
        .join(0u32, 1u32)
        .join(0u32, 1u32) // duplicate join
        .write(0u32, 0x100u64, AccessSize::U64)
        .read(2u32, 0x100u64, AccessSize::U64)
        .join(0u32, 2u32);
    let trace = b.build();
    assert_eq!(validate(&trace), Ok(()), "double join passes validation");
    let summary = dgrace_analysis::analyze(&trace);
    eprintln!("class at 0x100: {:?}", summary.class_at(dgrace_trace::Addr(0x100)));
    let prune = summary.prune_set(1, 0);
    let bare = FastTrack::new().run(&trace);
    let pruned = StaticPruneFilter::new(FastTrack::new(), prune).run(&trace);
    eprintln!(
        "bare races: {}, pruned races: {} (pruned {} accesses)",
        bare.races.len(),
        pruned.races.len(),
        pruned.stats.pruned
    );
    assert_eq!(bare.races.len(), pruned.races.len(), "pruning lost a race");
}
