//! A bank-teller simulation exercising the full tracked-synchronization
//! vocabulary online: a reader-writer lock over the accounts book, a
//! condition variable for the audit hand-off, and a barrier for the
//! end-of-day reconciliation — all under a live dynamic-granularity
//! detector.
//!
//! ```text
//! cargo run --release --example bank_teller
//! ```

use std::sync::Arc;
use std::thread;

use dgrace::core::DynamicGranularity;
use dgrace::runtime::{Runtime, TrackedBarrier, TrackedCondvar, TrackedRwLock};

const ACCOUNTS: usize = 64;
const TELLERS: usize = 3;
const TRANSFERS: usize = 200;

fn main() {
    let rt = Runtime::new(DynamicGranularity::new());
    let main = rt.main();

    // The accounts book: balances in a tracked array, structure guarded
    // by a reader-writer lock (tellers write, the auditor only reads).
    let book = rt.array(ACCOUNTS);
    book.fill(&main, 100); // opening balances
    let lock = Arc::new(TrackedRwLock::new(&rt, ()));
    let day_done = Arc::new(rt.mutex(0usize)); // tellers finished
    let audit_cv = Arc::new(TrackedCondvar::new(&rt));
    let closing = Arc::new(TrackedBarrier::new(&rt, TELLERS));

    let mut joins = Vec::new();
    let mut tickets = Vec::new();

    for teller in 0..TELLERS {
        let (child, ticket) = main.fork();
        let book = book.clone();
        let lock = Arc::clone(&lock);
        let day_done = Arc::clone(&day_done);
        let audit_cv = Arc::clone(&audit_cv);
        let closing = Arc::clone(&closing);
        tickets.push(ticket);
        joins.push(thread::spawn(move || {
            // Trading hours: move money between deterministic pairs.
            for i in 0..TRANSFERS {
                let from = (teller * 7 + i * 3) % ACCOUNTS;
                let to = (teller * 11 + i * 5) % ACCOUNTS;
                if from == to {
                    continue;
                }
                let _g = lock.write(&child);
                let a = book.get(&child, from);
                let b = book.get(&child, to);
                if a > 0 {
                    book.set(&child, from, a - 1);
                    book.set(&child, to, b + 1);
                }
            }
            // End of day: every teller reconciles at the barrier...
            closing.wait(&child);
            // ...then reads the whole book (shared hold) to verify.
            let total: u64 = {
                let _g = lock.read(&child);
                (0..ACCOUNTS).map(|i| book.get(&child, i)).sum()
            };
            assert_eq!(total, (ACCOUNTS * 100) as u64, "money conserved");
            // Signal the auditor when the last teller finishes.
            let mut done = day_done.lock(&child);
            *done += 1;
            if *done == TELLERS {
                audit_cv.notify_all(&child);
            }
        }));
    }

    // The auditor (main) waits for the tellers' signal, then audits.
    {
        let mut done = day_done.lock(&main);
        while *done < TELLERS {
            audit_cv.wait(&main, &mut done);
        }
    }
    let grand_total: u64 = {
        let _g = lock.read(&main);
        (0..ACCOUNTS).map(|i| book.get(&main, i)).sum()
    };

    for jh in joins {
        jh.join().unwrap();
    }
    for t in tickets {
        main.join(t);
    }

    let report = rt.finish();
    println!("accounts            : {ACCOUNTS}");
    println!(
        "grand total         : {grand_total} (expected {})",
        ACCOUNTS * 100
    );
    println!("events observed     : {}", report.stats.events);
    println!(
        "shadow peak         : {:.1} KiB, {} clocks",
        report.stats.peak_total_bytes as f64 / 1024.0,
        report.stats.peak_vc_count
    );
    println!("races               : {}", report.races.len());
    assert_eq!(grand_total, (ACCOUNTS * 100) as u64);
    assert!(
        report.races.is_empty(),
        "the bank is fully synchronized: {:?}",
        report.races
    );
    println!("\nrwlock + condvar + barrier, all race-free under the live detector.");
}
