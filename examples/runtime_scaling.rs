//! Standalone scaling harness for the online detection engine: measures
//! events/sec at 1/2/4/8 producer threads, serialized baseline (one
//! shard, per-event dispatch — the old global-mutex funnel) vs the
//! sharded batched engine. The numbers land in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example runtime_scaling
//! ```

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use dgrace::core::DynamicGranularity;
use dgrace::runtime::{Runtime, RuntimeOptions};

const WRITES_PER_PRODUCER: usize = 100_000;
const LOCK_EVERY: usize = 256;
const REPS: usize = 3;

fn drive(rt: &Runtime, producers: usize) -> u64 {
    let main = rt.main();
    let shared = Arc::new(rt.mutex(0u64));
    let arrays: Vec<_> = (0..producers).map(|_| rt.array(64)).collect();

    let mut joins = Vec::new();
    let mut tickets = Vec::new();
    for arr in arrays {
        let (child, ticket) = main.fork();
        let lock = Arc::clone(&shared);
        tickets.push(ticket);
        joins.push(thread::spawn(move || {
            for i in 0..WRITES_PER_PRODUCER {
                arr.set(&child, i % 64, i as u64);
                if i % LOCK_EVERY == 0 {
                    let mut g = lock.lock(&child);
                    *g += 1;
                }
            }
        }));
    }
    for jh in joins {
        jh.join().unwrap();
    }
    for t in tickets {
        main.join(t);
    }
    rt.finish().stats.events
}

/// Best-of-`REPS` events/sec for one configuration.
fn measure(opts: RuntimeOptions, producers: usize) -> f64 {
    let proto = DynamicGranularity::new();
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let rt = Runtime::sharded_with_options(&proto, opts);
        let start = Instant::now();
        let events = drive(&rt, producers);
        let rate = events as f64 / start.elapsed().as_secs_f64();
        best = best.max(rate);
    }
    best
}

fn main() {
    let serialized = RuntimeOptions {
        shards: 1,
        buffer_capacity: 1,
        record: false,
    };
    let sharded = RuntimeOptions {
        shards: 8,
        buffer_capacity: 256,
        record: false,
    };

    println!("online runtime scaling (dynamic-granularity detector, best of {REPS})");
    println!(
        "{:>10} {:>18} {:>18} {:>9}",
        "producers", "serialized ev/s", "sharded-8 ev/s", "speedup"
    );
    for producers in [1usize, 2, 4, 8] {
        let base = measure(serialized, producers);
        let shrd = measure(sharded, producers);
        println!(
            "{:>10} {:>18.0} {:>18.0} {:>8.2}x",
            producers,
            base,
            shrd,
            shrd / base
        );
    }
}
