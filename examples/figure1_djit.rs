//! Figure 1 of the paper: the DJIT+ example execution.
//!
//! Thread 1 writes `x` inside a critical section on lock `s`; thread 0
//! then writes `x` without synchronizing with that release. DJIT+ flags
//! the second write because `W_x[1] ⋢ T_0`.
//!
//! ```text
//! cargo run --example figure1_djit
//! ```

use dgrace::detectors::{DetectorExt, Djit, FastTrack};
use dgrace::prelude::*;

fn main() {
    const X: u64 = 0x2000;

    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .acquire(1u32, 0u32)
        .write(1u32, X, AccessSize::U32) // write(x) by T1, protected
        .release(1u32, 0u32) // L_s learns T1's clock
        .write(0u32, X, AccessSize::U32); // write(x) by T0 — not ordered!
    let trace = b.build();

    println!("Figure 1 execution:");
    println!("  T1: lock(s); write(x); unlock(s)");
    println!("  T0: write(x)                     <- never acquired s\n");

    let rep = Djit::new().run(&trace);
    println!("DJIT+ verdict: {} race(s)", rep.races.len());
    for r in &rep.races {
        println!(
            "  {} race on x={}: T0 at epoch {} vs T1's write at epoch {}",
            r.kind, r.addr, r.current, r.previous
        );
        println!(
            "  (W_x[1] = {} is NOT <= T_0[1] = 0 — unordered)",
            r.previous.clock
        );
    }
    assert_eq!(rep.races.len(), 1);

    // FastTrack reaches the same verdict from just the write epoch.
    let ft = FastTrack::new().run(&trace);
    assert_eq!(ft.race_addrs(), rep.race_addrs());
    println!("\nFastTrack (epochs instead of full clocks) agrees.");

    // Had T0 acquired s first, the accesses would be ordered:
    let mut b = TraceBuilder::new();
    b.fork(0u32, 1u32)
        .acquire(1u32, 0u32)
        .write(1u32, X, AccessSize::U32)
        .release(1u32, 0u32)
        .acquire(0u32, 0u32)
        .write(0u32, X, AccessSize::U32)
        .release(0u32, 0u32);
    let ordered = Djit::new().run(&b.build());
    assert!(ordered.races.is_empty());
    println!("With lock(s) around T0's write: no race, as expected.");
}
