//! Quickstart: build a tiny multithreaded execution trace, run the
//! dynamic-granularity detector, and print the race report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dgrace::prelude::*;

fn main() {
    // A two-thread program, as the stream of instrumentation events a
    // PIN-style tool would observe:
    //   main: balance = 100        (init, before the fork)
    //   T1:   balance += 50        (under lock)
    //   main: balance += 10        (WITHOUT the lock — bug!)
    let balance = 0x1000u64;
    let lock = 0u32;

    let mut b = TraceBuilder::new();
    b.write(0u32, balance, AccessSize::U64) // init by main
        .fork(0u32, 1u32)
        .acquire(1u32, lock)
        .read(1u32, balance, AccessSize::U64)
        .write(1u32, balance, AccessSize::U64)
        .release(1u32, lock)
        .read(0u32, balance, AccessSize::U64) // unlocked read-modify-write
        .write(0u32, balance, AccessSize::U64)
        .join(0u32, 1u32);
    let trace = b.build();

    let mut detector = DynamicGranularity::new();
    let report = detector.run(&trace);

    println!("detector : {}", report.detector);
    println!("events   : {}", report.stats.events);
    println!("accesses : {}", report.stats.accesses);
    println!("races    : {}", report.races.len());
    for race in &report.races {
        println!(
            "  {} race at {}: {} (current) vs {} (previous)",
            race.kind, race.addr, race.current, race.previous
        );
    }

    assert!(
        !report.races.is_empty(),
        "the unlocked read-modify-write must be reported"
    );

    // The same trace, checked by the byte-granularity FastTrack baseline:
    let byte_report = FastTrack::new().run(&trace);
    assert_eq!(report.race_addrs(), byte_report.race_addrs());
    println!(
        "\nbyte-granularity FastTrack agrees: {:?}",
        byte_report.race_addrs()
    );
}
