//! Online detection with *real* threads: a statistics counter updated by
//! worker threads — one of them forgets the lock, and the live detector
//! catches the race as it happens.
//!
//! ```text
//! cargo run --example online_racy_counter
//! ```

use std::sync::Arc;
use std::thread;

use dgrace::core::DynamicGranularity;
use dgrace::runtime::Runtime;

fn main() {
    let rt = Runtime::new(DynamicGranularity::new());
    let main = rt.main();

    // Shared state: a tracked counter and the mutex that should guard it.
    let counter = rt.cell(0);
    let guard = Arc::new(rt.mutex(()));

    let mut joins = Vec::new();
    let mut tickets = Vec::new();

    // Three well-behaved workers.
    for _ in 0..3 {
        let (child, ticket) = main.fork();
        let counter = counter.clone();
        let guard = Arc::clone(&guard);
        tickets.push(ticket);
        joins.push(thread::spawn(move || {
            for _ in 0..1000 {
                let _g = guard.lock(&child);
                counter.update(&child, |v| v + 1);
            }
        }));
    }

    // One buggy worker: increments without taking the lock.
    let (buggy, ticket) = main.fork();
    tickets.push(ticket);
    let c2 = counter.clone();
    joins.push(thread::spawn(move || {
        for _ in 0..10 {
            c2.update(&buggy, |v| v + 1);
        }
    }));

    for jh in joins {
        jh.join().unwrap();
    }
    for t in tickets {
        main.join(t);
    }

    let final_value = counter.get(&main);
    let report = rt.finish();

    println!("final counter value : {final_value}");
    println!("events observed     : {}", report.stats.events);
    println!("races detected      : {}", report.races.len());
    for race in &report.races {
        println!(
            "  {} race at {} — thread {} vs thread {}",
            race.kind, race.addr, race.current.tid, race.previous.tid
        );
    }

    assert!(
        !report.races.is_empty(),
        "the unlocked increments must be caught"
    );
    println!("\nThe buggy worker was caught live — no trace files involved.");
}
