//! Run every detector in the workspace over one workload and compare
//! precision and cost side by side.
//!
//! ```text
//! cargo run --release --example compare_detectors [workload] [scale]
//! ```

use dgrace::baselines::{HybridDetector, LockSetDetector, SegmentDetector};
use dgrace::core::DynamicGranularity;
use dgrace::detectors::{Detector, DetectorExt, Djit, FastTrack, Granularity, OracleDetector};
use dgrace::workloads::{Workload, WorkloadKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = args
        .get(1)
        .map(|n| WorkloadKind::from_name(n).expect("unknown workload name"))
        .unwrap_or(WorkloadKind::Streamcluster);
    let scale: f64 = args.get(2).map(|s| s.parse().unwrap()).unwrap_or(0.2);

    let (trace, truth) = Workload::new(kind).with_scale(scale).generate();
    println!(
        "workload {} (scale {scale}): {} events, {} threads, {} planted races\n",
        kind.name(),
        trace.len(),
        trace.thread_count(),
        truth.racy_addrs.len()
    );

    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(OracleDetector::new()),
        Box::new(Djit::new()),
        Box::new(FastTrack::with_granularity(Granularity::Byte)),
        Box::new(FastTrack::with_granularity(Granularity::Word)),
        Box::new(DynamicGranularity::new()),
        Box::new(SegmentDetector::new()),
        Box::new(HybridDetector::new()),
        Box::new(LockSetDetector::new()),
    ];

    println!(
        "{:<20} {:>6} {:>10} {:>12} {:>12}",
        "detector", "races", "same-ep%", "peak clocks", "peak KiB"
    );
    for mut det in detectors {
        let start = std::time::Instant::now();
        let rep = det.run(&trace);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<20} {:>6} {:>9.0}% {:>12} {:>12.1}  ({ms:.1} ms)",
            rep.detector,
            rep.races.len(),
            rep.stats.same_epoch_fraction() * 100.0,
            rep.stats.peak_vc_count,
            rep.stats.peak_total_bytes as f64 / 1024.0,
        );
    }

    println!(
        "\nGround truth: {} racy locations{}",
        truth.racy_addrs.len(),
        if truth.dynamic_extra > 0 {
            format!(
                " (+{} sharing artifacts expected from the dynamic detector)",
                truth.dynamic_extra
            )
        } else {
            String::new()
        }
    );
    println!("LockSet over-reports by design (discipline checker, no happens-before).");
}
