//! Record/replay workflow: run real threads under a `Tee` of a
//! [`Recorder`] and the live dynamic detector — races are caught online
//! *and* the observed schedule is captured for offline replay under
//! every other detector.
//!
//! ```text
//! cargo run --release --example record_online
//! ```

use std::sync::Arc;
use std::thread;

use dgrace::baselines::SegmentDetector;
use dgrace::core::DynamicGranularity;
use dgrace::detectors::{Detector, DetectorExt, Djit, FastTrack, OracleDetector, Recorder, Tee};
use dgrace::runtime::Runtime;
use dgrace::trace::io::{from_bytes, to_bytes};
use dgrace::trace::validate;

fn main() {
    // 1. Record AND detect live: a Tee feeds both sides the same stream.
    let rt = Runtime::new(Tee::new(Recorder::new(), DynamicGranularity::new()));
    let main = rt.main();
    let table = rt.array(32);
    let guard = Arc::new(rt.mutex(()));

    let mut joins = Vec::new();
    let mut tickets = Vec::new();
    for w in 0..3u64 {
        let (child, ticket) = main.fork();
        let table = table.clone();
        let guard = Arc::clone(&guard);
        tickets.push(ticket);
        joins.push(thread::spawn(move || {
            for i in 0..64usize {
                if w == 2 && i % 16 == 0 {
                    // The bug: occasionally skips the lock.
                    let v = table.get(&child, i % 32);
                    table.set(&child, i % 32, v + 1);
                } else {
                    let _g = guard.lock(&child);
                    let v = table.get(&child, i % 32);
                    table.set(&child, i % 32, v + 1);
                }
            }
        }));
    }
    for jh in joins {
        jh.join().unwrap();
    }
    for t in tickets {
        main.join(t);
    }

    // Pull the captured execution out, then the live verdict.
    let captured = rt.take_recorded().expect("runtime holds a recorder");
    let live = rt.finish();
    validate(&captured).expect("recorded schedule is well-formed");
    println!(
        "live run: {} events captured, {} race location(s) found online",
        captured.len(),
        live.race_addrs().len()
    );
    assert!(!live.races.is_empty(), "the buggy worker must be caught");

    // 2. Persist and reload — the byte format is lossless.
    let bytes = to_bytes(&captured);
    let reloaded = from_bytes(&bytes).expect("lossless format");
    assert_eq!(captured, reloaded);
    println!("persisted {} KiB, reloaded identically", bytes.len() / 1024);

    // 3. Replay under the whole detector stack: one schedule, many
    //    analyses, identical verdicts.
    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(OracleDetector::new()),
        Box::new(FastTrack::new()),
        Box::new(Djit::new()),
        Box::new(DynamicGranularity::new()),
        Box::new(SegmentDetector::new()),
    ];
    for det in detectors.iter_mut() {
        let rep = det.run(&reloaded);
        println!(
            "  {:<16} {} race location(s) at {:?}",
            rep.detector,
            rep.race_addrs().len(),
            rep.race_addrs()
        );
        assert_eq!(
            rep.race_addrs(),
            live.race_addrs(),
            "offline replay must agree with the live verdict"
        );
    }
    println!("\nrecord once, analyze many — all detectors agree on the schedule.");
}
