//! Record a workload trace to disk, reload it, and verify the detectors
//! see the identical execution — the offline analysis workflow.
//!
//! ```text
//! cargo run --release --example trace_roundtrip
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};

use dgrace::core::DynamicGranularity;
use dgrace::detectors::DetectorExt;
use dgrace::trace::io::{read_trace, write_trace};
use dgrace::trace::{stats::stats, validate};
use dgrace::workloads::{Workload, WorkloadKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (trace, _) = Workload::new(WorkloadKind::Ffmpeg)
        .with_scale(0.2)
        .generate();
    validate(&trace)?;

    let path = std::env::temp_dir().join("dgrace_ffmpeg.trace");
    {
        let mut w = BufWriter::new(File::create(&path)?);
        write_trace(&trace, &mut w)?;
    }
    let size = std::fs::metadata(&path)?.len();
    println!(
        "recorded {} events to {} ({} KiB)",
        trace.len(),
        path.display(),
        size / 1024
    );

    let reloaded = read_trace(&mut BufReader::new(File::open(&path)?))?;
    assert_eq!(trace, reloaded, "binary round-trip must be lossless");

    let s = stats(&reloaded);
    println!(
        "reloaded: {} accesses ({} reads / {} writes), {} threads, {} locks",
        s.accesses, s.reads, s.writes, s.threads, s.locks
    );
    println!(
        "access sizes 1/2/4/8: {:?}, sub-word fraction {:.0}%",
        s.by_size,
        s.sub_word_fraction() * 100.0
    );

    let live = DynamicGranularity::new().run(&trace);
    let replayed = DynamicGranularity::new().run(&reloaded);
    assert_eq!(live.race_addrs(), replayed.race_addrs());
    println!(
        "race report identical before and after the round-trip: {:?}",
        replayed.race_addrs()
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
