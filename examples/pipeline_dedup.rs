//! The dedup scenario: a pipeline that allocates, fills, hashes and frees
//! a chunk per work item — the paper's most allocation-intensive
//! benchmark (~14 GB of churn). Shows why the `Init` state matters: every
//! chunk lives for exactly one epoch, so whole chunks share a single
//! vector clock and the peak clock population stays tiny.
//!
//! ```text
//! cargo run --release --example pipeline_dedup
//! ```

use dgrace::core::{DynamicConfig, DynamicGranularity};
use dgrace::detectors::{Detector, DetectorExt, FastTrack};
use dgrace::prelude::*;
use dgrace::workloads::{Workload, WorkloadKind};

fn show(name: &str, det: &mut dyn Detector, trace: &Trace) {
    let rep = det.run(trace);
    let sharing = rep
        .stats
        .sharing
        .as_ref()
        .map(|s| {
            format!(
                ", avg sharing {:.1}, max group {}",
                s.avg_share_count, s.max_group
            )
        })
        .unwrap_or_default();
    println!(
        "{name:<22} peak clocks {:>7}  clock allocs {:>8}  peak shadow KiB {:>8.1}  races {}{sharing}",
        rep.stats.peak_vc_count,
        rep.stats.vc_allocs,
        rep.stats.peak_total_bytes as f64 / 1024.0,
        rep.races.len(),
    );
}

fn main() {
    let (trace, truth) = Workload::new(WorkloadKind::Dedup)
        .with_scale(0.5)
        .generate();
    println!(
        "dedup workload: {} events, {} planted races\n",
        trace.len(),
        truth.racy_addrs.len()
    );

    show("fasttrack-byte", &mut FastTrack::new(), &trace);
    show("dynamic", &mut DynamicGranularity::new(), &trace);
    show(
        "dynamic, no Init share",
        &mut DynamicGranularity::with_config(DynamicConfig::no_sharing_at_init()),
        &trace,
    );

    println!(
        "\nThe one-epoch chunks collapse to one clock each under Init sharing;\n\
         without it every 8-byte word of every chunk needs its own clock."
    );
}
