//! # dgrace — dynamic-granularity data race detection
//!
//! A Rust reproduction of *"Efficient Data Race Detection for C/C++
//! Programs Using Dynamic Granularity"* (Song & Lee, IPDPS 2014).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`vc`] — vector clocks, epochs and adaptive read clocks;
//! * [`trace`] — the event model and trace format (the PIN-callback
//!   substitute);
//! * [`shadow`] — shadow memory, per-thread epoch bitmaps, and the
//!   memory-accounting model;
//! * [`detectors`] — the `Detector` trait, DJIT+, FastTrack at fixed
//!   granularities, and the exact oracle;
//! * [`core`] — the paper's contribution: the dynamic-granularity
//!   detector with its vector-clock sharing state machine;
//! * [`baselines`] — a segment-based detector (Valgrind DRD's class), an
//!   Eraser-style LockSet detector, and a hybrid detector (Intel
//!   Inspector XE's class);
//! * [`workloads`] — synthetic generators modeled on the paper's 11
//!   benchmark programs;
//! * [`runtime`] — an online instrumentation runtime for real Rust
//!   threads;
//! * [`analysis`] — the ahead-of-time trace analysis that proves
//!   locations race-free so detectors can prune them.
//!
//! ## Quick start
//!
//! ```
//! use dgrace::prelude::*;
//!
//! // Two threads write the same word without synchronization.
//! let mut b = TraceBuilder::new();
//! b.fork(0u32, 1u32)
//!     .write(0u32, 0x1000u64, AccessSize::U32)
//!     .write(1u32, 0x1000u64, AccessSize::U32);
//! let trace = b.build();
//!
//! let mut det = DynamicGranularity::new();
//! let report = det.run(&trace);
//! assert_eq!(report.races.len(), 1);
//! ```

pub use dgrace_analysis as analysis;
pub use dgrace_baselines as baselines;
pub use dgrace_core as core;
pub use dgrace_detectors as detectors;
pub use dgrace_runtime as runtime;
pub use dgrace_shadow as shadow;
pub use dgrace_trace as trace;
pub use dgrace_vc as vc;
pub use dgrace_workloads as workloads;

/// Commonly used items, importable with `use dgrace::prelude::*`.
pub mod prelude {
    pub use dgrace_analysis::analyze;
    pub use dgrace_baselines::{HybridDetector, LockSetDetector, SegmentDetector};
    pub use dgrace_core::{DynamicConfig, DynamicGranularity};
    pub use dgrace_detectors::{
        Detector, DetectorExt, Djit, FastTrack, Granularity, NopDetector, RaceReport, Report,
    };
    pub use dgrace_trace::{AccessSize, Addr, Event, LockId, Tid, Trace, TraceBuilder};
    pub use dgrace_workloads::{Workload, WorkloadKind};
}
